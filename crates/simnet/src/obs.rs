//! Structured observability: typed trace events, sinks, and exporters.
//!
//! The string [`Trace`](crate::Trace) is a debugging aid for humans; this
//! module is the machine-readable counterpart the analysis tooling builds
//! on. When recording is enabled the kernel emits one typed [`Event`] per
//! interesting occurrence — dispatches, sends, deliveries, timers,
//! crashes, memory operations, leader changes, plus actor-authored notes
//! and span marks — each stamped with virtual time, the executing actor,
//! and (on the partitioned kernel) the partition it was recorded on.
//!
//! Recording is **strictly read-only**: it draws no randomness, schedules
//! nothing, and never perturbs dispatch order, so a traced run is
//! bit-identical (virtual-time metrics, decisions, logs) to an untraced
//! one — the suite pins this. Disabled recording costs a single branch
//! per would-be event; every event body is built lazily behind that
//! branch.
//!
//! Three exporters turn a recorded event stream into artifacts:
//!
//! * [`to_jsonl`] — one JSON object per line, for ad-hoc scripting.
//! * [`to_chrome_trace`] — Chrome trace-event JSON, loadable in Perfetto
//!   (`ui.perfetto.dev`) or `chrome://tracing`; per-actor tracks plus one
//!   synthesized duration slice per command span.
//! * [`to_html_timeline`] — a **self-contained** HTML timeline viewer:
//!   one file, data embedded, inline CSS/JS, zero network references, so
//!   a shrunk fuzz repro can be inspected on an air-gapped machine.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::ids::ActorId;
use crate::time::Time;

/// What one recorded [`Event`] describes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventBody {
    /// The kernel dispatched a non-message event (`kind` is the event
    /// kind's wire name, e.g. `"start"`).
    Dispatch {
        /// Kind name as in [`EventKind::kind_name`](crate::EventKind::kind_name).
        kind: &'static str,
    },
    /// An actor handed a message to the network.
    Send {
        /// Destination actor.
        to: ActorId,
        /// When the link will deliver it (already sampled, so the arc is
        /// exact — recording reads the decision, it does not make one).
        deliver_at: Time,
    },
    /// A message was delivered to the recorded actor.
    Deliver {
        /// Sending actor.
        from: ActorId,
    },
    /// An actor armed a timer.
    TimerSet {
        /// The actor's purpose tag.
        tag: u64,
        /// When it will fire.
        fire_at: Time,
    },
    /// A live timer fired at the recorded actor.
    TimerFired {
        /// The actor's purpose tag.
        tag: u64,
    },
    /// The recorded actor crashed (takes no further steps).
    Crash,
    /// An event addressed to an already-crashed actor was dropped.
    Dropped {
        /// Kind name of the dropped event.
        kind: &'static str,
    },
    /// A memory operation was submitted by the recorded actor.
    MemOp {
        /// Operation name: `"read"`, `"write"`, `"read_range"`, or
        /// `"change_perm"`.
        op: &'static str,
    },
    /// The leader oracle announced a leader to the recorded actor.
    LeaderChange {
        /// The announced leader.
        leader: ActorId,
    },
    /// Free-form actor note — the escape hatch for layer-specific
    /// happenings (migrations, adversary activity, …).
    Note {
        /// The note text.
        text: Cow<'static, str>,
    },
    /// A lifecycle mark on a span (e.g. one client command): `span`
    /// identifies the span, `stage` is an application-defined stage code,
    /// `data` carries one application-defined word (the sharded layer
    /// stores the routing group).
    Mark {
        /// Span identity (the sharded layer uses the client command id).
        span: u64,
        /// Application-defined stage code (ordered along the lifecycle).
        stage: u8,
        /// Application-defined payload word.
        data: u64,
    },
}

impl EventBody {
    /// Short stable name of this body's kind (exporter vocabulary).
    pub fn kind(&self) -> &'static str {
        match self {
            EventBody::Dispatch { .. } => "dispatch",
            EventBody::Send { .. } => "send",
            EventBody::Deliver { .. } => "deliver",
            EventBody::TimerSet { .. } => "timer_set",
            EventBody::TimerFired { .. } => "timer",
            EventBody::Crash => "crash",
            EventBody::Dropped { .. } => "dropped",
            EventBody::MemOp { .. } => "mem_op",
            EventBody::LeaderChange { .. } => "leader",
            EventBody::Note { .. } => "note",
            EventBody::Mark { .. } => "mark",
        }
    }
}

/// One recorded observation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Virtual time of the occurrence.
    pub at: Time,
    /// Kernel partition it was recorded on (0 on the monolithic kernel).
    pub partition: u32,
    /// Record sequence within the partition (total order of recording).
    pub seq: u64,
    /// The actor the occurrence is attributed to.
    pub actor: ActorId,
    /// What happened.
    pub body: EventBody,
}

/// A consumer of recorded events. The kernel's built-in buffer is always
/// filled when recording is enabled; a sink additionally sees each event
/// as it is recorded (streaming export, online assertions, …). Sinks are
/// `Send` so kernel state can move onto worker threads.
pub trait TraceSink: Send {
    /// Observes one event, in recording order.
    fn record(&mut self, ev: &Event);
}

/// A [`TraceSink`] that just counts events per kind — handy in tests and
/// as the trait's reference implementation.
#[derive(Debug, Default)]
pub struct CountingSink {
    counts: BTreeMap<&'static str, u64>,
}

impl CountingSink {
    /// Creates an empty counter sink.
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// Events seen with the given kind name.
    pub fn count(&self, kind: &str) -> u64 {
        self.counts.get(kind).copied().unwrap_or(0)
    }

    /// Total events seen.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

impl TraceSink for CountingSink {
    fn record(&mut self, ev: &Event) {
        *self.counts.entry(ev.body.kind()).or_insert(0) += 1;
    }
}

/// The kernel-side recorder: a per-core buffer plus an optional sink.
/// Disabled by default; when disabled, [`ObsRecorder::record`] is a
/// single branch and the body closure never runs.
pub(crate) struct ObsRecorder {
    enabled: bool,
    partition: u32,
    seq: u64,
    buf: Vec<Event>,
    sink: Option<Box<dyn TraceSink>>,
}

impl ObsRecorder {
    pub(crate) fn new() -> ObsRecorder {
        ObsRecorder {
            enabled: false,
            partition: 0,
            seq: 0,
            buf: Vec::new(),
            sink: None,
        }
    }

    pub(crate) fn enable(&mut self) {
        self.enabled = true;
    }

    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn set_partition(&mut self, partition: u32) {
        self.partition = partition;
    }

    pub(crate) fn attach_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.enabled = true;
        self.sink = Some(sink);
    }

    /// Records one event; `body` runs only when recording is enabled.
    #[inline]
    pub(crate) fn record(&mut self, at: Time, actor: ActorId, body: impl FnOnce() -> EventBody) {
        if !self.enabled {
            return;
        }
        let ev = Event {
            at,
            partition: self.partition,
            seq: self.seq,
            actor,
            body: body(),
        };
        self.seq += 1;
        if let Some(sink) = &mut self.sink {
            sink.record(&ev);
        }
        self.buf.push(ev);
    }

    /// Drains the recorded buffer (recording order).
    pub(crate) fn take(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.buf)
    }
}

/// Merges per-partition event buffers into one globally ordered stream:
/// sorted by `(time, partition, per-partition seq)`. Each partition's
/// stream is deterministic regardless of worker-thread count, so the
/// merged stream is too.
pub fn merge_events(buffers: Vec<Vec<Event>>) -> Vec<Event> {
    let mut all: Vec<Event> = buffers.into_iter().flatten().collect();
    all.sort_by_key(|e| (e.at, e.partition, e.seq));
    all
}

/// Escapes `s` for embedding inside a JSON string literal. `<` is also
/// escaped (as `<`) so exported JSON can be inlined into a
/// `<script>` block without ever forming a `</script>` terminator.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '<' => out.push_str("\\u003c"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one event as a single-line JSON object (no trailing newline).
fn event_json(e: &Event) -> String {
    let mut s = format!(
        "{{\"at\":{},\"part\":{},\"seq\":{},\"actor\":{},\"kind\":\"{}\"",
        e.at.0,
        e.partition,
        e.seq,
        e.actor.0,
        e.body.kind()
    );
    match &e.body {
        EventBody::Dispatch { kind } | EventBody::Dropped { kind } => {
            let _ = write!(s, ",\"of\":\"{kind}\"");
        }
        EventBody::Send { to, deliver_at } => {
            let _ = write!(s, ",\"to\":{},\"deliver_at\":{}", to.0, deliver_at.0);
        }
        EventBody::Deliver { from } => {
            let _ = write!(s, ",\"from\":{}", from.0);
        }
        EventBody::TimerSet { tag, fire_at } => {
            let _ = write!(s, ",\"tag\":{tag},\"fire_at\":{}", fire_at.0);
        }
        EventBody::TimerFired { tag } => {
            let _ = write!(s, ",\"tag\":{tag}");
        }
        EventBody::Crash => {}
        EventBody::MemOp { op } => {
            let _ = write!(s, ",\"op\":\"{op}\"");
        }
        EventBody::LeaderChange { leader } => {
            let _ = write!(s, ",\"leader\":{}", leader.0);
        }
        EventBody::Note { text } => {
            let _ = write!(s, ",\"text\":\"{}\"", json_escape(text));
        }
        EventBody::Mark { span, stage, data } => {
            let _ = write!(s, ",\"span\":{span},\"stage\":{stage},\"data\":{data}");
        }
    }
    s.push('}');
    s
}

/// Exports events as JSON Lines: one object per event, in stream order.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_json(e));
        out.push('\n');
    }
    out
}

/// Exports events as Chrome trace-event JSON (the `traceEvents` array
/// format Perfetto and `chrome://tracing` load). Virtual-time ticks map
/// 1:1 to microseconds, so one network delay renders as 1 ms. Each event
/// becomes an instant on its actor's track (`pid` = partition, `tid` =
/// actor); in addition, every span id seen in [`EventBody::Mark`] events
/// is synthesized into one complete (`"X"`) slice from its first to its
/// last mark, on a dedicated `span` track.
pub fn to_chrome_trace(events: &[Event]) -> String {
    fn push(out: &mut String, first: &mut bool, s: &str) {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(s);
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut spans: BTreeMap<u64, (Time, Time)> = BTreeMap::new();
    for e in events {
        if let EventBody::Mark { span, .. } = e.body {
            let entry = spans.entry(span).or_insert((e.at, e.at));
            entry.0 = entry.0.min(e.at);
            entry.1 = entry.1.max(e.at);
        }
        let name = match &e.body {
            EventBody::Dispatch { kind } => format!("dispatch {kind}"),
            EventBody::Send { .. } => "send".to_string(),
            EventBody::Deliver { .. } => "deliver".to_string(),
            EventBody::TimerSet { .. } => "timer_set".to_string(),
            EventBody::TimerFired { tag } => format!("timer {tag}"),
            EventBody::Crash => "CRASH".to_string(),
            EventBody::Dropped { kind } => format!("dropped {kind}"),
            EventBody::MemOp { op } => format!("mem {op}"),
            EventBody::LeaderChange { leader } => format!("leader a{}", leader.0),
            EventBody::Note { text } => json_escape(text),
            EventBody::Mark { span, stage, .. } => format!("mark s{span}@{stage}"),
        };
        push(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{}}}",
                name,
                e.at.0,
                e.partition,
                e.actor.0,
                event_json(e)
            ),
        );
    }
    for (span, (lo, hi)) in spans {
        push(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"span {}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":\"spans\"}}",
                span,
                lo.0,
                (hi.0 - lo.0).max(1)
            ),
        );
    }
    out.push_str("]}");
    out
}

/// The inline viewer shell. `__TITLE__` and `__DATA__` are substituted;
/// everything else — CSS, JS, SVG rendering — is embedded verbatim, with
/// no external references whatsoever (offline constraint).
const HTML_TEMPLATE: &str = r#"<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>__TITLE__</title>
<style>
body { background: #14161a; color: #d8dce2; font: 13px monospace; margin: 0; }
h1 { font-size: 15px; padding: 10px 14px 0; margin: 0; }
#legend { padding: 4px 14px 8px; color: #8a93a0; }
#legend span { margin-right: 14px; }
#wrap { overflow-x: auto; }
svg { display: block; }
.lane { stroke: #262a31; stroke-width: 1; }
.lanelabel { fill: #8a93a0; font: 11px monospace; }
.t-deliver { fill: #4c9be8; }
.t-send { fill: #3a6ea5; }
.t-timer { fill: #777f3f; }
.t-mem_op { fill: #5b5f66; }
.t-leader { fill: #c9a227; }
.t-crash { fill: #e05252; }
.t-dropped { fill: #8a4a4a; }
.t-note { fill: #7ac77a; }
.t-mark { fill: #c678dd; }
.t-dispatch { fill: #5b5f66; }
.t-timer_set { fill: #4a4f3a; }
.msg { stroke: #3a6ea5; stroke-width: 0.6; opacity: 0.35; fill: none; }
.span-arc { stroke: #c678dd; stroke-width: 1.2; opacity: 0.8; fill: none; }
.crashline { stroke: #e05252; stroke-width: 1; stroke-dasharray: 3 3; }
#tip { position: fixed; background: #21252c; border: 1px solid #3a3f47;
       padding: 4px 8px; pointer-events: none; display: none; max-width: 60em; }
</style>
</head>
<body>
<h1>__TITLE__</h1>
<div id="legend"></div>
<div id="wrap"></div>
<div id="tip"></div>
<script>
var DATA = __DATA__;
(function () {
  var NS = "http://www.w3.org/2000/svg";
  var actors = [];
  DATA.forEach(function (e) {
    if (actors.indexOf(e.actor) < 0) actors.push(e.actor);
    if (e.kind === "send" && actors.indexOf(e.to) < 0) actors.push(e.to);
  });
  actors.sort(function (a, b) { return a - b; });
  var lane = {};
  actors.forEach(function (a, i) { lane[a] = i; });
  var tMax = 1;
  DATA.forEach(function (e) {
    tMax = Math.max(tMax, e.at, e.deliver_at || 0, e.fire_at || 0);
  });
  var LH = 18, LABEL = 64, H = actors.length * LH + 40;
  var W = Math.max(900, Math.min(16000, Math.round(tMax / 50)));
  var sx = function (t) { return LABEL + (t / tMax) * (W - LABEL - 10); };
  var sy = function (a) { return 24 + lane[a] * LH + LH / 2; };
  var svg = document.createElementNS(NS, "svg");
  svg.setAttribute("width", W); svg.setAttribute("height", H);
  function el(tag, attrs) {
    var n = document.createElementNS(NS, tag);
    for (var k in attrs) n.setAttribute(k, attrs[k]);
    svg.appendChild(n);
    return n;
  }
  actors.forEach(function (a) {
    el("line", { x1: LABEL, y1: sy(a), x2: W - 10, y2: sy(a), "class": "lane" });
    var t = el("text", { x: 4, y: sy(a) + 4, "class": "lanelabel" });
    t.textContent = "a" + a;
  });
  DATA.forEach(function (e) {
    if (e.kind === "send" && e.to !== undefined) {
      el("line", { x1: sx(e.at), y1: sy(e.actor),
                   x2: sx(e.deliver_at), y2: sy(e.to), "class": "msg" });
    }
  });
  var marks = {};
  DATA.forEach(function (e) {
    if (e.kind === "mark") {
      (marks[e.span] = marks[e.span] || []).push(e);
    }
  });
  Object.keys(marks).forEach(function (s) {
    var ms = marks[s];
    ms.sort(function (a, b) { return a.at - b.at || a.stage - b.stage; });
    var d = "";
    ms.forEach(function (m, i) {
      d += (i ? " L " : "M ") + sx(m.at) + " " + sy(m.actor);
    });
    if (ms.length > 1) el("path", { d: d, "class": "span-arc" });
  });
  var tip = document.getElementById("tip");
  DATA.forEach(function (e) {
    var attrs = { cx: sx(e.at), cy: sy(e.actor), r: e.kind === "mark" ? 3 :
                  (e.kind === "crash" ? 4 : 2), "class": "t-" + e.kind };
    var c = el("circle", attrs);
    if (e.kind === "crash") {
      el("line", { x1: sx(e.at), y1: 14, x2: sx(e.at), y2: H - 10, "class": "crashline" });
    }
    c.addEventListener("mousemove", function (ev) {
      tip.style.display = "block";
      tip.style.left = (ev.clientX + 12) + "px";
      tip.style.top = (ev.clientY + 12) + "px";
      tip.textContent = JSON.stringify(e);
    });
    c.addEventListener("mouseout", function () { tip.style.display = "none"; });
  });
  document.getElementById("wrap").appendChild(svg);
  var kinds = {};
  DATA.forEach(function (e) { kinds[e.kind] = (kinds[e.kind] || 0) + 1; });
  var legend = document.getElementById("legend");
  Object.keys(kinds).sort().forEach(function (k) {
    var s = document.createElement("span");
    s.textContent = k + " ×" + kinds[k];
    legend.appendChild(s);
  });
})();
</script>
</body>
</html>
"#;

/// Renders events into a **self-contained** HTML timeline: per-actor
/// lanes, message arcs (send → delivery), span arcs through their marks,
/// crash markers, and hover details — all data embedded, inline CSS/JS,
/// no network access required or attempted.
pub fn to_html_timeline(title: &str, events: &[Event]) -> String {
    let mut data = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            data.push(',');
        }
        data.push_str(&event_json(e));
    }
    data.push(']');
    HTML_TEMPLATE
        .replace("__TITLE__", &json_escape(title))
        .replace("__DATA__", &data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, partition: u32, seq: u64, actor: u32, body: EventBody) -> Event {
        Event {
            at: Time(at),
            partition,
            seq,
            actor: ActorId(actor),
            body,
        }
    }

    #[test]
    fn disabled_recorder_runs_no_body() {
        let mut r = ObsRecorder::new();
        r.record(Time(1), ActorId(0), || panic!("must not run when disabled"));
        assert!(r.take().is_empty());
    }

    #[test]
    fn recorder_stamps_partition_and_seq() {
        let mut r = ObsRecorder::new();
        r.enable();
        r.set_partition(3);
        r.record(Time(5), ActorId(1), || EventBody::Crash);
        r.record(Time(7), ActorId(2), || EventBody::Deliver {
            from: ActorId(1),
        });
        let evs = r.take();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].partition, 3);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].seq, 1);
        assert!(r.take().is_empty(), "take drains");
    }

    #[test]
    fn sink_sees_events_in_order() {
        let mut r = ObsRecorder::new();
        r.attach_sink(Box::new(CountingSink::new()));
        r.record(Time(1), ActorId(0), || EventBody::Crash);
        r.record(Time(2), ActorId(0), || EventBody::Crash);
        // The built-in buffer still fills alongside the sink.
        assert_eq!(r.take().len(), 2);
    }

    #[test]
    fn merge_orders_by_time_then_partition_then_seq() {
        let a = vec![
            ev(10, 0, 0, 1, EventBody::Crash),
            ev(30, 0, 1, 1, EventBody::Crash),
        ];
        let b = vec![
            ev(10, 1, 0, 2, EventBody::Crash),
            ev(20, 1, 1, 2, EventBody::Crash),
        ];
        let merged = merge_events(vec![a, b]);
        let key: Vec<(u64, u32)> = merged.iter().map(|e| (e.at.0, e.partition)).collect();
        assert_eq!(key, vec![(10, 0), (10, 1), (20, 1), (30, 0)]);
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let evs = vec![
            ev(
                1,
                0,
                0,
                4,
                EventBody::Send {
                    to: ActorId(5),
                    deliver_at: Time(1001),
                },
            ),
            ev(
                1001,
                0,
                1,
                5,
                EventBody::Note {
                    text: Cow::Borrowed("hello \"world\""),
                },
            ),
        ];
        let out = to_jsonl(&evs);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"send\""));
        assert!(lines[0].contains("\"deliver_at\":1001"));
        assert!(lines[1].contains("\\\"world\\\""));
    }

    #[test]
    fn chrome_trace_has_span_slices() {
        let evs = vec![
            ev(
                100,
                0,
                0,
                9,
                EventBody::Mark {
                    span: 7,
                    stage: 0,
                    data: 0,
                },
            ),
            ev(
                400,
                0,
                1,
                9,
                EventBody::Mark {
                    span: 7,
                    stage: 4,
                    data: 0,
                },
            ),
        ];
        let out = to_chrome_trace(&evs);
        assert!(out.starts_with('{') && out.ends_with('}'));
        assert!(out.contains("\"traceEvents\""));
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"dur\":300"));
    }

    #[test]
    fn html_is_self_contained() {
        let evs = vec![ev(
            5,
            0,
            0,
            1,
            EventBody::Note {
                text: Cow::Borrowed("</script><script>alert(1)</script>"),
            },
        )];
        let html = to_html_timeline("test run", &evs);
        assert!(html.contains("<!DOCTYPE html>"));
        // Offline constraint: no external references of any kind. The SVG
        // namespace URL inside the inline script is an identifier, not a
        // fetch, and is the only URL-shaped string allowed.
        assert!(
            !html.contains("http://") || {
                let stripped = html.replace("http://www.w3.org/2000/svg", "");
                !stripped.contains("http://")
            }
        );
        assert!(!html.contains("https://"));
        assert!(!html.contains("src="));
        assert!(!html.contains("href="));
        // The note's script terminator must have been neutralized.
        assert_eq!(html.matches("</script>").count(), 1);
    }
}
