//! Partitioned parallel simulation kernel: deterministic multi-threaded
//! discrete-event execution.
//!
//! [`Simulation`] dispatches every event on one OS thread, so experiments
//! whose *virtual-time* throughput scales (e.g. the sharded multi-group SMR
//! service: disjoint groups sharing no state) are still wall-clock-bound by
//! single-core dispatch. [`ParSimulation`] removes that bound while keeping
//! the kernel's defining property — every run is a pure function of its
//! seed — *independently of how many worker threads execute it*.
//!
//! # Synchronization protocol (conservative windows)
//!
//! Actors are placed onto `P` partitions (the [`Partitioning`] map). Each
//! partition is a complete sub-kernel: its own bucketed calendar queue, its
//! own scheduling-sequence counter, its own generation-stamped timer table,
//! its own metrics and trace, and its own RNG stream (split from the run
//! seed by partition index). The run alternates two phases:
//!
//! 1. **Window execution.** Let `T` be the minimum next-event time across
//!    all partitions and `L` the *lookahead* — a lower bound on every
//!    cross-partition link delay. Each partition independently dispatches
//!    all of its events with time `< T + L`. Sends to co-located actors go
//!    straight into the local queue (any delay, including sub-lookahead
//!    timers and same-tick messages, is fine); sends to remote actors are
//!    staged into a per-destination **outbox** in emission order.
//! 2. **Barrier merge.** After every partition reaches the window end, the
//!    coordinator drains all outboxes into the destination partitions'
//!    queues in a fixed order (source partition 0..P, emission order within
//!    each), assigning destination-local sequence numbers; then the next
//!    window is computed, the caller's stop predicate is evaluated, and the
//!    cycle repeats.
//!
//! # Why the result is thread-count-invariant
//!
//! A cross-partition message sent at `t ≥ T` arrives at `t + d ≥ T + L`,
//! i.e. strictly after the current window — so within a window, partitions
//! are causally independent and each sub-kernel's execution is a pure
//! function of its own pre-window state. Worker threads only ever execute
//! *whole partitions within one window*; the assignment of partitions to
//! threads affects nothing observable. Every remaining source of order —
//! intra-partition `(time, seq)` dispatch, merge order at barriers, RNG
//! streams, window boundaries, predicate checks — is fixed by the seed and
//! the partitioning alone. Hence: same seed + same partitioning ⇒
//! bit-identical runs (states, metrics, traces) for **any** thread count,
//! which `tests/` pins with 1-vs-2-vs-4-thread differential runs.
//!
//! The price is the lookahead requirement: every cross-partition send must
//! sample a delay `≥ L` (checked at staging time; violating it panics
//! rather than silently reordering), and `L` must be positive. Placement
//! therefore matters: co-locate tightly-coupled actors (a replication
//! group's replicas and memories), and let only latency-tolerant traffic
//! (a router's submissions and commit observations) cross partitions.
//!
//! # Example
//!
//! ```
//! use simnet::{Actor, Context, Duration, EventKind, ParSimulation, Time};
//!
//! struct Echo;
//! impl Actor<u32> for Echo {
//!     fn on_event(&mut self, ctx: &mut Context<'_, u32>, ev: EventKind<u32>) {
//!         if let EventKind::Msg { from, msg } = ev {
//!             if msg < 3 {
//!                 ctx.send(from, msg + 1); // crosses partitions: 1 delay ≥ L
//!             }
//!         }
//!     }
//! }
//!
//! let mut sim: ParSimulation<u32> = ParSimulation::new(7, 2, Duration::DELAY);
//! let a = sim.add_to(0, Echo);
//! let b = sim.add_to(1, Echo);
//! sim.schedule(Time::ZERO, a, EventKind::Msg { from: b, msg: 0 });
//! sim.set_threads(2);
//! sim.run_to_quiescence(Time::from_delays(100));
//! assert_eq!(sim.merged_metrics().messages_delivered, 4);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::actor::{Actor, AnyActor};
use crate::delay::DelayModel;
use crate::event::EventKind;
use crate::ids::ActorId;
use crate::metrics::Metrics;
use crate::obs::{self, EventBody};
use crate::queue::{Payload, Scheduled, WheelQueue};
use crate::sim::{Context, Core, RunOutcome};
use crate::time::{Duration, Time};

/// An event staged for another partition: `(arrival time, target, event)`.
type StagedEvent<M> = (Time, ActorId, EventKind<M>);

/// The actor → partition placement of a [`ParSimulation`].
///
/// Built incrementally by [`ParSimulation::add_to`]; actor ids stay dense
/// and global (assigned in registration order, exactly as in
/// [`crate::Simulation`]) — partitioning changes *where* an actor executes,
/// never its identity.
#[derive(Clone, Debug)]
pub struct Partitioning {
    parts: usize,
    of: Vec<u32>,
}

impl Partitioning {
    /// An empty placement over `parts` partitions.
    pub fn new(parts: usize) -> Partitioning {
        assert!(parts >= 1, "need at least one partition");
        Partitioning {
            parts,
            of: Vec::new(),
        }
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Number of placed actors.
    pub fn len(&self) -> usize {
        self.of.len()
    }

    /// Whether no actor has been placed yet.
    pub fn is_empty(&self) -> bool {
        self.of.is_empty()
    }

    /// Places the next actor (dense id order) on `partition`, returning
    /// its id.
    pub fn place(&mut self, partition: usize) -> ActorId {
        assert!(partition < self.parts, "partition out of range");
        let id = ActorId(self.of.len() as u32);
        self.of.push(partition as u32);
        id
    }

    /// The partition actor `a` executes on.
    pub fn partition_of(&self, a: ActorId) -> usize {
        self.of[a.index()] as usize
    }

    /// The raw placement map, indexed by actor id.
    pub fn map(&self) -> &[u32] {
        &self.of
    }
}

/// One partition's complete sub-kernel: queue, sequence counter, timers,
/// RNG stream, metrics, trace, actors, and per-destination outboxes.
struct SubKernel<M> {
    part: u32,
    core: Core<M>,
    queue: WheelQueue<M>,
    seq: u64,
    now: Time,
    /// Actor storage, indexed by *global* actor id; `Some` only for actors
    /// placed on this partition.
    actors: Vec<Option<Box<dyn AnyActor<M> + Send>>>,
    /// Crash flags for this partition's actors, global-id indexed.
    crashed: Vec<bool>,
    /// Events staged for other partitions during the current window, in
    /// emission order, one queue per destination partition.
    outbox: Vec<Vec<StagedEvent<M>>>,
    /// Recycled pending-drain buffer (as in the monolithic kernel).
    pending_scratch: Vec<StagedEvent<M>>,
}

impl<M: 'static> SubKernel<M> {
    fn new(part: u32, parts: usize, rng: StdRng) -> SubKernel<M> {
        let mut core = Core::new(rng);
        // Events this sub-kernel records carry its partition index, so a
        // merged stream stays attributable (and deterministically ordered).
        core.obs.set_partition(part);
        SubKernel {
            part,
            core,
            queue: WheelQueue::new(),
            seq: 0,
            now: Time::ZERO,
            actors: Vec::new(),
            crashed: Vec::new(),
            outbox: (0..parts).map(|_| Vec::new()).collect(),
            pending_scratch: Vec::new(),
        }
    }

    fn push(&mut self, at: Time, to: ActorId, payload: Payload<M>) {
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq: self.seq,
            to,
            payload,
        });
    }

    fn is_crashed(&self, a: ActorId) -> bool {
        self.crashed.get(a.index()).copied().unwrap_or(false)
    }

    fn mark_crashed(&mut self, a: ActorId) {
        if self.crashed.len() <= a.index() {
            self.crashed.resize(a.index() + 1, false);
        }
        self.crashed[a.index()] = true;
    }

    /// Dispatches every queued event with time `< window_end`, staging
    /// cross-partition sends into the outboxes. The heart of a window's
    /// parallel phase; mirrors `Simulation::step`'s optimized path.
    fn step_window(&mut self, window_end: Time, placement: &[u32], lookahead: Duration) {
        loop {
            match self.queue.next_time() {
                Some(t) if t < window_end => {}
                _ => return,
            }
            let depth = self.queue.len() as u64;
            if depth > self.core.metrics.peak_queue_len {
                self.core.metrics.peak_queue_len = depth;
            }
            let sched = self.queue.pop().expect("peeked non-empty");
            debug_assert!(sched.at >= self.now, "partition queue went backwards");
            self.now = sched.at;
            self.core.metrics.events_dispatched += 1;
            self.core.metrics.sample_queue_depth(self.now, depth);
            match sched.payload {
                Payload::Crash => {
                    self.mark_crashed(sched.to);
                    self.core.metrics.dispatches.crash += 1;
                    let (now, to) = (self.now, sched.to);
                    self.core.trace.push(now, to, "CRASH");
                    self.core.obs.record(now, to, || EventBody::Crash);
                }
                Payload::Deliver(ev) => {
                    if self.is_crashed(sched.to) {
                        self.core.metrics.dispatches.dropped += 1;
                        let (now, to) = (self.now, sched.to);
                        let kind = ev.kind_name();
                        self.core
                            .trace
                            .push_with(now, to, || format!("dropped {kind} (crashed)"));
                        self.core
                            .obs
                            .record(now, to, || EventBody::Dropped { kind });
                        if let EventKind::Timer { id, .. } = ev {
                            self.core.retire_timer(id);
                        }
                        continue;
                    }
                    match &ev {
                        EventKind::Start => self.core.metrics.dispatches.start += 1,
                        EventKind::Msg { .. } => self.core.metrics.dispatches.msg += 1,
                        EventKind::Timer { .. } => self.core.metrics.dispatches.timer += 1,
                        EventKind::LeaderChange { .. } => self.core.metrics.dispatches.leader += 1,
                    }
                    if let EventKind::Timer { id, .. } = ev {
                        if !self.core.retire_timer(id) {
                            continue; // cancelled
                        }
                        self.core.metrics.timers_fired += 1;
                    }
                    if let EventKind::Msg { .. } = ev {
                        self.core.metrics.messages_delivered += 1;
                    }
                    if self.core.trace.is_enabled() {
                        let line: &'static str = match &ev {
                            EventKind::Start => "deliver start",
                            EventKind::Msg { .. } => "deliver msg",
                            EventKind::Timer { .. } => "deliver timer",
                            EventKind::LeaderChange { .. } => "deliver leader",
                        };
                        let (now, to) = (self.now, sched.to);
                        self.core.trace.push(now, to, line);
                    }
                    if self.core.obs.is_enabled() {
                        let (now, to) = (self.now, sched.to);
                        match &ev {
                            EventKind::Start => self
                                .core
                                .obs
                                .record(now, to, || EventBody::Dispatch { kind: "start" }),
                            EventKind::Msg { from, .. } => {
                                let from = *from;
                                self.core
                                    .obs
                                    .record(now, to, || EventBody::Deliver { from });
                            }
                            EventKind::Timer { tag, .. } => {
                                let tag = *tag;
                                self.core
                                    .obs
                                    .record(now, to, || EventBody::TimerFired { tag });
                            }
                            EventKind::LeaderChange { leader } => {
                                let leader = *leader;
                                self.core
                                    .obs
                                    .record(now, to, || EventBody::LeaderChange { leader });
                            }
                        }
                    }
                    let mut actor = self.actors[sched.to.index()]
                        .take()
                        .expect("actor dispatched on wrong partition or re-entrantly");
                    {
                        let mut ctx = Context::new(sched.to, self.now, &mut self.core);
                        actor.on_event(&mut ctx, ev);
                    }
                    self.actors[sched.to.index()] = Some(actor);
                    // Drain effects: local sends re-enter the queue, remote
                    // sends are staged for the barrier merge.
                    let mut batch = std::mem::replace(
                        &mut self.core.pending,
                        std::mem::take(&mut self.pending_scratch),
                    );
                    for (at, to, ev) in batch.drain(..) {
                        let dest = placement[to.index()] as usize;
                        if dest == self.part as usize {
                            self.push(at, to, Payload::Deliver(ev));
                        } else {
                            assert!(
                                at >= self.now + lookahead,
                                "cross-partition send {} -> {} at {:?} beats the \
                                 lookahead {:?}: the partitioning is unsound for \
                                 this delay model",
                                sched.to,
                                to,
                                at,
                                lookahead,
                            );
                            self.outbox[dest].push((at, to, ev));
                        }
                    }
                    self.pending_scratch = batch;
                }
            }
        }
    }
}

/// Read access to every actor of a [`ParSimulation`] at a barrier (the
/// stop predicate's view) or after a run ([`ParSimulation::with_actors`]).
pub struct ParActors<'a, M> {
    guards: Vec<MutexGuard<'a, SubKernel<M>>>,
    of: &'a [u32],
}

impl<M: 'static> ParActors<'_, M> {
    /// Downcasts actor `id` to its concrete type for inspection.
    pub fn actor_as<T: 'static>(&self, id: ActorId) -> Option<&T> {
        let part = *self.of.get(id.index())? as usize;
        self.guards[part]
            .actors
            .get(id.index())?
            .as_ref()?
            .as_any()
            .downcast_ref::<T>()
    }
}

/// Reusable hybrid barrier: spins briefly (multi-core fast path), then
/// yields (so oversubscribed runs — more threads than cores — stay
/// correct, merely slower). Sense-reversing via a generation counter.
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> SpinBarrier {
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == generation {
            spins = spins.saturating_add(1);
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Per-round control published by the coordinator to the worker threads.
struct RoundCtl {
    window_end: AtomicU64,
    stop: AtomicBool,
    barrier: SpinBarrier,
}

/// What the coordinator decided at a barrier.
enum Ctl {
    Stop(RunOutcome),
    Window(Time),
}

/// A deterministic discrete-event simulation over message type `M`, split
/// into partitions that execute in parallel. See the [module docs]
/// (self) for the synchronization protocol and the determinism argument.
///
/// Differences from [`crate::Simulation`]:
///
/// * Actors are registered with an explicit partition
///   ([`ParSimulation::add_to`]) and must be `Send`.
/// * Randomness is split per partition, and the stop predicate is
///   evaluated at window barriers rather than between single events — so a
///   partitioned run is a *different* (equally legal) schedule than the
///   monolithic kernel's for the same seed. What is guaranteed is
///   invariance in the thread count: for a fixed seed and partitioning,
///   runs with 1, 2, or any number of worker threads are bit-identical.
/// * Delay hooks are unsupported (they could undercut the lookahead).
pub struct ParSimulation<M> {
    parts: Vec<Mutex<SubKernel<M>>>,
    plan: Partitioning,
    lookahead: Duration,
    threads: usize,
    started: bool,
    reached: Time,
    /// Merge scratch: staged events collected per destination partition.
    inbound: Vec<Vec<StagedEvent<M>>>,
}

impl<M: Send + 'static> ParSimulation<M> {
    /// Creates an empty partitioned simulation: `parts` sub-kernels whose
    /// RNG streams are split from `seed`, synchronized with the given
    /// `lookahead` (a lower bound on every cross-partition link delay;
    /// must be positive — with zero lookahead no two partitions could
    /// ever safely run in parallel).
    pub fn new(seed: u64, parts: usize, lookahead: Duration) -> ParSimulation<M> {
        assert!(parts >= 1, "need at least one partition");
        assert!(
            lookahead > Duration::ZERO,
            "partitioned execution needs a positive lookahead"
        );
        let kernels = (0..parts)
            .map(|p| {
                // SplitMix-style stream separation: partition p's stream is
                // a function of (seed, p) only, never of the thread count.
                let stream = seed.wrapping_add((p as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                Mutex::new(SubKernel::new(
                    p as u32,
                    parts,
                    StdRng::seed_from_u64(stream),
                ))
            })
            .collect();
        ParSimulation {
            parts: kernels,
            plan: Partitioning::new(parts),
            lookahead,
            threads: 1,
            started: false,
            reached: Time::ZERO,
            inbound: (0..parts).map(|_| Vec::new()).collect(),
        }
    }

    /// Sets how many OS threads execute windows (clamped to
    /// `1..=partitions` at run time). The thread count never affects
    /// results — only wall-clock time.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The configured worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The lookahead this simulation synchronizes on.
    pub fn lookahead(&self) -> Duration {
        self.lookahead
    }

    /// The actor placement built so far.
    pub fn partitioning(&self) -> &Partitioning {
        &self.plan
    }

    /// Registers `actor` on `partition`, returning its (global, dense)
    /// id. Ids are assigned in registration order across all partitions,
    /// exactly as in [`crate::Simulation::add`]; every sub-kernel keeps a
    /// global-length actor table (`None` for actors it does not own) so
    /// dispatch indexes by global id with no translation.
    pub fn add_to<T: Actor<M> + Send>(&mut self, partition: usize, actor: T) -> ActorId {
        assert!(!self.started, "cannot add actors after the run started");
        let id = self.plan.place(partition);
        let mut boxed: Option<Box<dyn AnyActor<M> + Send>> = Some(Box::new(actor));
        for (p, kernel) in self.parts.iter_mut().enumerate() {
            let k = kernel.get_mut().expect("unpoisoned");
            k.actors
                .push(if p == partition { boxed.take() } else { None });
            k.crashed.push(false);
        }
        id
    }

    /// Number of registered actors, across all partitions.
    pub fn actor_count(&self) -> usize {
        self.plan.len()
    }

    /// Sets the delay model used by links with no per-link override, on
    /// every partition. Cross-partition links must never sample below the
    /// lookahead; that is checked per message at staging time.
    pub fn set_default_delay(&mut self, model: DelayModel) {
        for kernel in &mut self.parts {
            kernel.get_mut().expect("unpoisoned").core.default_delay = model.clone();
        }
    }

    /// Overrides the delay model of the directed link `from -> to` (the
    /// model is sampled by the *sender's* partition).
    pub fn set_link_delay(&mut self, from: ActorId, to: ActorId, model: DelayModel) {
        let p = self.plan.partition_of(from);
        self.parts[p]
            .get_mut()
            .expect("unpoisoned")
            .core
            .link_overrides
            .insert((from, to), model);
    }

    /// Schedules an event for delivery to `to` at `at` (clamped to the
    /// time the run has reached), e.g. scripted Ω announcements.
    pub fn schedule(&mut self, at: Time, to: ActorId, ev: EventKind<M>) {
        let at = at.max(self.reached);
        let p = self.plan.partition_of(to);
        self.parts[p]
            .get_mut()
            .expect("unpoisoned")
            .push(at, to, Payload::Deliver(ev));
    }

    /// Schedules `actor` to crash at `at`: from that instant it receives
    /// no further events (the paper's failure semantics, exactly as in
    /// [`crate::Simulation::crash_at`]).
    pub fn crash_at(&mut self, actor: ActorId, at: Time) {
        let at = at.max(self.reached);
        let p = self.plan.partition_of(actor);
        self.parts[p]
            .get_mut()
            .expect("unpoisoned")
            .push(at, actor, Payload::Crash);
    }

    /// Announces `leader` to every actor in `targets` at time `at`,
    /// emulating the Ω leader oracle.
    pub fn announce_leader(&mut self, at: Time, targets: &[ActorId], leader: ActorId) {
        for &t in targets {
            self.schedule(at, t, EventKind::LeaderChange { leader });
        }
    }

    /// The latest virtual time any partition has reached.
    pub fn now(&self) -> Time {
        self.reached
    }

    /// All partitions' metrics merged into one record: counters summed,
    /// queue peaks maxed, decision/abort instants unioned (earliest wins).
    pub fn merged_metrics(&mut self) -> Metrics {
        let mut merged = Metrics::new();
        for kernel in &mut self.parts {
            merged.absorb(&kernel.get_mut().expect("unpoisoned").core.metrics);
        }
        merged
    }

    /// Enables structured event recording (see [`crate::obs`]) on every
    /// partition. Strictly read-only: recording never perturbs the run.
    pub fn enable_obs(&mut self) {
        for kernel in &mut self.parts {
            kernel.get_mut().expect("unpoisoned").core.obs.enable();
        }
    }

    /// Drains every partition's recorded events into one stream, ordered
    /// by `(time, partition, per-partition seq)` — identical for any
    /// worker-thread count, since each partition's stream is.
    pub fn take_obs_events(&mut self) -> Vec<obs::Event> {
        let buffers = self
            .parts
            .iter_mut()
            .map(|k| k.get_mut().expect("unpoisoned").core.obs.take())
            .collect();
        obs::merge_events(buffers)
    }

    /// Per-partition peak event-queue depths, indexed by partition. Under
    /// partitioning a single global "peak queue length" is ambiguous
    /// (no global queue exists); this is the honest quantity, with
    /// [`ParSimulation::merged_metrics`]' `peak_queue_len` reporting their
    /// max.
    pub fn partition_peak_queue_lens(&mut self) -> Vec<u64> {
        self.parts
            .iter_mut()
            .map(|k| k.get_mut().expect("unpoisoned").core.metrics.peak_queue_len)
            .collect()
    }

    /// Locks every partition and hands the caller a read view of all
    /// actors (post-run state extraction).
    pub fn with_actors<R>(&mut self, f: impl FnOnce(&ParActors<'_, M>) -> R) -> R {
        let guards: Vec<MutexGuard<'_, SubKernel<M>>> = self
            .parts
            .iter()
            .map(|m| m.lock().expect("unpoisoned"))
            .collect();
        let view = ParActors {
            guards,
            of: self.plan.map(),
        };
        f(&view)
    }

    /// Whether `actor` has crashed.
    pub fn is_crashed(&mut self, actor: ActorId) -> bool {
        let p = self.plan.partition_of(actor);
        self.parts[p]
            .get_mut()
            .expect("unpoisoned")
            .is_crashed(actor)
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.plan.len() {
            let to = ActorId(i as u32);
            let p = self.plan.partition_of(to);
            self.parts[p].get_mut().expect("unpoisoned").push(
                Time::ZERO,
                to,
                Payload::Deliver(EventKind::Start),
            );
        }
    }

    /// Runs until the predicate holds (checked at window barriers), every
    /// queue drains, or virtual time passes `max`. The outcome — and every
    /// bit of kernel and actor state — is identical for any thread count.
    pub fn run_until<F>(&mut self, max: Time, mut pred: F) -> RunOutcome
    where
        F: FnMut(&ParActors<'_, M>) -> bool,
    {
        self.ensure_started();
        let threads = self.threads.clamp(1, self.parts.len());
        let lookahead = self.lookahead;
        // Split borrows once: workers share `parts`, the coordinator also
        // uses the merge scratch and placement map.
        let parts = &self.parts;
        let plan_of = self.plan.map();
        let inbound = &mut self.inbound;
        let reached = &mut self.reached;

        if threads == 1 {
            // Same control flow without thread machinery: the parallel
            // phase degenerates to a partition-order loop, which is
            // exactly what each worker would do — hence bit-identical.
            loop {
                match Self::control(parts, plan_of, inbound, reached, max, lookahead, &mut pred) {
                    Ctl::Stop(outcome) => return outcome,
                    Ctl::Window(end) => {
                        for kernel in parts {
                            kernel
                                .lock()
                                .expect("unpoisoned")
                                .step_window(end, plan_of, lookahead);
                        }
                    }
                }
            }
        }

        let ctl = RoundCtl {
            window_end: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            barrier: SpinBarrier::new(threads),
        };
        std::thread::scope(|scope| {
            for w in 1..threads {
                let ctl = &ctl;
                scope.spawn(move || loop {
                    // Round start: the coordinator has published the
                    // window (or the stop flag) before releasing this.
                    ctl.barrier.wait();
                    if ctl.stop.load(Ordering::Acquire) {
                        return;
                    }
                    let end = Time(ctl.window_end.load(Ordering::Acquire));
                    let mut p = w;
                    while p < parts.len() {
                        parts[p]
                            .lock()
                            .expect("unpoisoned")
                            .step_window(end, plan_of, lookahead);
                        p += threads;
                    }
                    // Round end: hand the partitions back to the
                    // coordinator for the barrier merge.
                    ctl.barrier.wait();
                });
            }
            // Coordinator (doubles as worker 0). Workers are parked at the
            // round-start barrier whenever control runs, so locks are free.
            loop {
                match Self::control(parts, plan_of, inbound, reached, max, lookahead, &mut pred) {
                    Ctl::Stop(outcome) => {
                        ctl.stop.store(true, Ordering::Release);
                        ctl.barrier.wait(); // release workers into their exit
                        return outcome;
                    }
                    Ctl::Window(end) => {
                        ctl.window_end.store(end.0, Ordering::Release);
                        ctl.barrier.wait(); // start the round
                        let mut p = 0;
                        while p < parts.len() {
                            parts[p]
                                .lock()
                                .expect("unpoisoned")
                                .step_window(end, plan_of, lookahead);
                            p += threads;
                        }
                        ctl.barrier.wait(); // wait for the round to finish
                    }
                }
            }
        })
    }

    /// Runs until no events remain or virtual time passes `max`.
    pub fn run_to_quiescence(&mut self, max: Time) -> RunOutcome {
        self.run_until(max, |_| false)
    }

    /// The coordinator's barrier step: merge all outboxes (fixed source
    /// order ⇒ deterministic destination sequence numbers), advance the
    /// reached time, evaluate the stop predicate, and pick the next
    /// window `[T, T + lookahead)` from the global minimum next-event
    /// time `T`.
    #[allow(clippy::too_many_arguments)]
    fn control<F>(
        parts: &[Mutex<SubKernel<M>>],
        plan_of: &[u32],
        inbound: &mut [Vec<StagedEvent<M>>],
        reached: &mut Time,
        max: Time,
        lookahead: Duration,
        pred: &mut F,
    ) -> Ctl
    where
        F: FnMut(&ParActors<'_, M>) -> bool,
    {
        // Pass 1: collect every partition's staged events, per destination,
        // in source-partition order (append preserves emission order).
        for kernel in parts {
            let mut k = kernel.lock().expect("unpoisoned");
            for (dest, staged) in inbound.iter_mut().enumerate() {
                if !k.outbox[dest].is_empty() {
                    staged.append(&mut k.outbox[dest]);
                }
            }
        }
        // Pass 2: deliver inbound events (assigning destination-local
        // sequence numbers in the fixed merge order), find the global
        // minimum next-event time, and advance the reached clock.
        let mut next: Option<Time> = None;
        for (dest, kernel) in parts.iter().enumerate() {
            let mut k = kernel.lock().expect("unpoisoned");
            for (at, to, ev) in inbound[dest].drain(..) {
                k.push(at, to, Payload::Deliver(ev));
            }
            if let Some(t) = k.queue.next_time() {
                next = Some(next.map_or(t, |n: Time| n.min(t)));
            }
            *reached = (*reached).max(k.now);
        }
        // Stop checks, in the same order as `Simulation::run_until`:
        // predicate first, then quiescence, then the time budget.
        {
            let guards: Vec<MutexGuard<'_, SubKernel<M>>> = parts
                .iter()
                .map(|m| m.lock().expect("unpoisoned"))
                .collect();
            let view = ParActors {
                guards,
                of: plan_of,
            };
            if pred(&view) {
                return Ctl::Stop(RunOutcome::Predicate);
            }
        }
        match next {
            None => Ctl::Stop(RunOutcome::Quiescent),
            Some(t) if t > max => Ctl::Stop(RunOutcome::TimeLimit),
            // Cap the window at the budget: events past `max` stay queued,
            // exactly as the monolithic kernel leaves them undispatched.
            Some(t) => Ctl::Window(Time((t + lookahead).0.min(max.0 + 1))),
        }
    }
}

impl<M: Send + 'static> std::fmt::Debug for ParSimulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParSimulation")
            .field("partitions", &self.parts.len())
            .field("actors", &self.plan.len())
            .field("threads", &self.threads)
            .field("lookahead", &self.lookahead)
            .field("reached", &self.reached)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    enum TMsg {
        Ping(u32),
        Pong(u32),
    }

    struct Ponger {
        seen: Vec<u32>,
    }
    impl Actor<TMsg> for Ponger {
        fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
            if let EventKind::Msg {
                from,
                msg: TMsg::Ping(n),
            } = ev
            {
                self.seen.push(n);
                ctx.send(from, TMsg::Pong(n));
            }
        }
    }

    struct Pinger {
        target: ActorId,
        rounds: u32,
        pongs: Vec<u32>,
        done_at: Option<Time>,
    }
    impl Actor<TMsg> for Pinger {
        fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
            match ev {
                EventKind::Start => ctx.send(self.target, TMsg::Ping(0)),
                EventKind::Msg {
                    msg: TMsg::Pong(n), ..
                } => {
                    self.pongs.push(n);
                    if n + 1 < self.rounds {
                        ctx.send(self.target, TMsg::Ping(n + 1));
                    } else {
                        ctx.mark_decided();
                        self.done_at = Some(ctx.now());
                    }
                }
                _ => {}
            }
        }
    }

    /// A jittered many-to-many gossip spanning every partition; each node
    /// also arms (and half the time cancels) a local timer per message, so
    /// the run exercises queues, timers, RNG draws and cross-partition
    /// staging together.
    struct Gossip {
        peers: u32,
        fanout: u32,
        received: u64,
        last_timer: Option<crate::TimerId>,
    }
    impl Actor<TMsg> for Gossip {
        fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
            match ev {
                EventKind::Start => {
                    for i in 0..self.fanout {
                        let to = ActorId((ctx.me().0 + i + 1) % self.peers);
                        ctx.send(to, TMsg::Ping(6));
                    }
                }
                EventKind::Msg {
                    msg: TMsg::Ping(h), ..
                } if h > 0 => {
                    self.received += 1;
                    let mix = (ctx.me().0 as u64)
                        .wrapping_mul(0x9E37_79B9)
                        .wrapping_add(ctx.now().0)
                        .wrapping_add(h as u64);
                    let to = ActorId((mix % self.peers as u64) as u32);
                    ctx.send(to, TMsg::Ping(h - 1));
                    if let Some(id) = self.last_timer.take() {
                        ctx.cancel_timer(id);
                    }
                    if mix.is_multiple_of(2) {
                        self.last_timer =
                            Some(ctx.set_timer(Duration::from_delays(1 + (mix % 5)), h as u64));
                    }
                }
                EventKind::Msg { .. } => self.received += 1,
                _ => {}
            }
        }
    }

    fn gossip_run(threads: usize, parts: usize) -> (Vec<u64>, Metrics, Time) {
        let mut sim: ParSimulation<TMsg> = ParSimulation::new(42, parts, Duration::from_delays(1));
        sim.set_default_delay(DelayModel::Uniform {
            lo: Duration::from_delays(1),
            hi: Duration::from_delays(4),
        });
        let n = 24u32;
        for i in 0..n {
            sim.add_to(
                i as usize % parts,
                Gossip {
                    peers: n,
                    fanout: 3,
                    received: 0,
                    last_timer: None,
                },
            );
        }
        sim.set_threads(threads);
        let out = sim.run_to_quiescence(Time::from_delays(10_000));
        assert_eq!(out, RunOutcome::Quiescent);
        let received = sim.with_actors(|v| {
            (0..n)
                .map(|i| v.actor_as::<Gossip>(ActorId(i)).unwrap().received)
                .collect()
        });
        let metrics = sim.merged_metrics();
        let now = sim.now();
        (received, metrics, now)
    }

    #[test]
    fn thread_count_never_changes_the_run() {
        let baseline = gossip_run(1, 4);
        for threads in [2, 3, 4, 8] {
            let run = gossip_run(threads, 4);
            assert_eq!(baseline.0, run.0, "{threads} threads: actor states differ");
            assert_eq!(
                baseline.1.events_dispatched, run.1.events_dispatched,
                "{threads} threads: event counts differ"
            );
            assert_eq!(baseline.1.messages_sent, run.1.messages_sent);
            assert_eq!(baseline.1.messages_delivered, run.1.messages_delivered);
            assert_eq!(baseline.1.timers_fired, run.1.timers_fired);
            assert_eq!(baseline.1.peak_queue_len, run.1.peak_queue_len);
            assert_eq!(baseline.2, run.2, "{threads} threads: clocks differ");
        }
    }

    #[test]
    fn partition_count_is_part_of_the_seed_contract() {
        // Different partitionings are different (each deterministic) runs.
        let a = gossip_run(1, 2);
        let b = gossip_run(2, 2);
        assert_eq!(a.0, b.0);
        let c = gossip_run(1, 4);
        assert_eq!(
            a.1.messages_delivered, c.1.messages_delivered,
            "gossip volume is fixed by fanout, not partitioning"
        );
    }

    #[test]
    fn cross_partition_round_trip_keeps_latency() {
        let mut sim: ParSimulation<TMsg> = ParSimulation::new(1, 2, Duration::DELAY);
        let ponger = sim.add_to(1, Ponger { seen: Vec::new() });
        let pinger = sim.add_to(
            0,
            Pinger {
                target: ponger,
                rounds: 3,
                pongs: Vec::new(),
                done_at: None,
            },
        );
        sim.set_threads(2);
        let out = sim.run_to_quiescence(Time::from_delays(100));
        assert_eq!(out, RunOutcome::Quiescent);
        sim.with_actors(|v| {
            let p = v.actor_as::<Pinger>(pinger).unwrap();
            assert_eq!(p.pongs, vec![0, 1, 2]);
            // Same delay accounting as the monolithic kernel: 2 delays per
            // round trip, barriers add no virtual time.
            assert_eq!(p.done_at, Some(Time::from_delays(6)));
        });
        assert_eq!(sim.merged_metrics().first_decision_delays(), Some(6.0));
    }

    #[test]
    fn crash_silences_remote_actor() {
        let mut sim: ParSimulation<TMsg> = ParSimulation::new(1, 2, Duration::DELAY);
        let ponger = sim.add_to(1, Ponger { seen: Vec::new() });
        let pinger = sim.add_to(
            0,
            Pinger {
                target: ponger,
                rounds: 5,
                pongs: Vec::new(),
                done_at: None,
            },
        );
        sim.crash_at(ponger, Time::from_delays(3));
        sim.set_threads(2);
        sim.run_to_quiescence(Time::from_delays(100));
        assert!(sim.is_crashed(ponger));
        sim.with_actors(|v| {
            let p = v.actor_as::<Pinger>(pinger).unwrap();
            // The ping landing at t=3 is dropped: only round 0 completes.
            assert_eq!(p.pongs, vec![0]);
        });
    }

    #[test]
    fn predicate_stops_at_a_barrier() {
        let mut sim: ParSimulation<TMsg> = ParSimulation::new(9, 2, Duration::DELAY);
        let ponger = sim.add_to(1, Ponger { seen: Vec::new() });
        let pinger = sim.add_to(
            0,
            Pinger {
                target: ponger,
                rounds: 50,
                pongs: Vec::new(),
                done_at: None,
            },
        );
        let out = sim.run_until(Time::from_delays(1_000), |v| {
            v.actor_as::<Pinger>(pinger)
                .is_some_and(|p| p.pongs.len() >= 2)
        });
        assert_eq!(out, RunOutcome::Predicate);
        assert!(sim.now() < Time::from_delays(1_000));
    }

    #[test]
    fn time_limit_respected() {
        let mut sim: ParSimulation<TMsg> = ParSimulation::new(9, 2, Duration::DELAY);
        let ponger = sim.add_to(1, Ponger { seen: Vec::new() });
        sim.add_to(
            0,
            Pinger {
                target: ponger,
                rounds: 1_000,
                pongs: Vec::new(),
                done_at: None,
            },
        );
        let out = sim.run_to_quiescence(Time::from_delays(7));
        assert_eq!(out, RunOutcome::TimeLimit);
        assert!(sim.now() <= Time::from_delays(7));
    }

    #[test]
    #[should_panic(expected = "beats the lookahead")]
    fn undercutting_the_lookahead_is_detected() {
        // Links sample 1 delay but the caller claims a 2-delay lookahead:
        // the first cross-partition send must panic, not reorder silently.
        let mut sim: ParSimulation<TMsg> = ParSimulation::new(3, 2, Duration::from_delays(2));
        let ponger = sim.add_to(1, Ponger { seen: Vec::new() });
        sim.add_to(
            0,
            Pinger {
                target: ponger,
                rounds: 1,
                pongs: Vec::new(),
                done_at: None,
            },
        );
        sim.run_to_quiescence(Time::from_delays(100));
    }

    #[test]
    fn placement_api_is_dense_and_queryable() {
        let mut plan = Partitioning::new(3);
        assert!(plan.is_empty());
        assert_eq!(plan.place(2), ActorId(0));
        assert_eq!(plan.place(0), ActorId(1));
        assert_eq!(plan.place(2), ActorId(2));
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.parts(), 3);
        assert_eq!(plan.partition_of(ActorId(0)), 2);
        assert_eq!(plan.partition_of(ActorId(1)), 0);
        assert_eq!(plan.map(), &[2, 0, 2]);
    }

    #[test]
    fn obs_events_are_thread_count_invariant() {
        let traced_run = |threads: usize| {
            let mut sim: ParSimulation<TMsg> = ParSimulation::new(42, 4, Duration::from_delays(1));
            sim.set_default_delay(DelayModel::Uniform {
                lo: Duration::from_delays(1),
                hi: Duration::from_delays(4),
            });
            let n = 24u32;
            for i in 0..n {
                sim.add_to(
                    i as usize % 4,
                    Gossip {
                        peers: n,
                        fanout: 3,
                        received: 0,
                        last_timer: None,
                    },
                );
            }
            sim.enable_obs();
            sim.set_threads(threads);
            sim.run_to_quiescence(Time::from_delays(10_000));
            (
                sim.take_obs_events(),
                sim.merged_metrics().events_dispatched,
            )
        };
        let (events1, dispatched1) = traced_run(1);
        assert!(!events1.is_empty());
        // Recording is read-only: the untraced gossip baseline dispatches
        // the same events.
        assert_eq!(dispatched1, gossip_run(1, 4).1.events_dispatched);
        for threads in [2, 4] {
            let (events_t, _) = traced_run(threads);
            assert_eq!(
                events1, events_t,
                "{threads} threads: merged obs streams differ"
            );
        }
    }

    #[test]
    fn merged_metrics_take_max_of_partition_peaks() {
        let mut sim: ParSimulation<TMsg> = ParSimulation::new(5, 2, Duration::DELAY);
        let ponger = sim.add_to(1, Ponger { seen: Vec::new() });
        sim.add_to(
            0,
            Pinger {
                target: ponger,
                rounds: 4,
                pongs: Vec::new(),
                done_at: None,
            },
        );
        sim.run_to_quiescence(Time::from_delays(100));
        let peaks = sim.partition_peak_queue_lens();
        assert_eq!(peaks.len(), 2);
        assert_eq!(
            sim.merged_metrics().peak_queue_len,
            peaks.iter().copied().max().unwrap()
        );
    }
}
