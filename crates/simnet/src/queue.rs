//! The event queue of the simulation kernel.
//!
//! [`WheelQueue`] is a bucketed calendar queue ("timing wheel") of
//! one-tick buckets over a 2^15-tick near-future window, with a two-level
//! occupancy bitmap to find the next non-empty tick in a handful of word
//! operations, and a [`BinaryHeap`] fallback for far-future events (they
//! migrate into the wheel as virtual time approaches them). Push and pop
//! are O(1) in the common case — no sift-up/sift-down moves of event
//! payloads. (The pre-overhaul kernel used a plain [`BinaryHeap`]; the
//! tests below still pop one against the wheel to pin the identical
//! `(time, seq)` order.)
//!
//! ## Determinism contract
//!
//! Events pop in strictly ascending `(at, seq)` order, where `seq` is the
//! kernel-assigned scheduling sequence number. The wheel guarantees this
//! by (a) advancing its cursor tick-to-tick through the occupancy bitmaps,
//! and (b) sorting each bucket by `seq` when the cursor arrives on it
//! (buckets can receive events out of sequence order when far-future
//! events drain in next to directly-scheduled ones; the sort is O(k log k)
//! over tiny, mostly-sorted buckets). Events scheduled for the tick
//! currently being dispatched always carry a higher `seq` than anything
//! already in the bucket, so appends preserve sortedness.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::event::EventKind;
use crate::ids::ActorId;
use crate::time::Time;

/// What a scheduled entry does on delivery.
pub(crate) enum Payload<M> {
    /// Deliver an event to the target actor.
    Deliver(EventKind<M>),
    /// Crash the target actor.
    Crash,
}

/// One entry in the event queue.
pub(crate) struct Scheduled<M> {
    pub(crate) at: Time,
    pub(crate) seq: u64,
    pub(crate) to: ActorId,
    pub(crate) payload: Payload<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties deterministically in scheduling order.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// log2 of the wheel window, in ticks. 2^15 = 32768 ticks ≈ 32 network
/// delays: every common-case message (1–4 delays) and retry timer (20–30
/// delays) lands in the wheel; only long failure-detection timeouts and
/// scripted far-future stimuli take the heap detour.
const RING_BITS: u32 = 15;
const RING: usize = 1 << RING_BITS;
const RING_MASK: u64 = (RING - 1) as u64;
const WORDS: usize = RING / 64;
const SUMMARY_WORDS: usize = WORDS / 64;

/// Bucketed calendar queue with far-future heap fallback.
pub(crate) struct WheelQueue<M> {
    /// One bucket per tick of the window `[cursor, cursor + RING)`,
    /// indexed by `tick & RING_MASK`.
    buckets: Box<[VecDeque<Scheduled<M>>]>,
    /// Bit per bucket: bucket may be non-empty. Only the cursor's own bit
    /// can be stale (cleared lazily when the cursor advances).
    occupied: Box<[u64]>,
    /// Bit per `occupied` word: word is non-zero.
    summary: [u64; SUMMARY_WORDS],
    /// Current tick: every event before it has been popped.
    cursor: u64,
    /// Events at `cursor + RING` or later, ordered like the legacy heap.
    far: BinaryHeap<Scheduled<M>>,
    /// Memoized [`WheelQueue::next_time`] result; invalidated by any push
    /// or pop. The run loop peeks before every step, so this halves the
    /// bitmap scans.
    cached_next: Option<Option<Time>>,
    len: usize,
}

impl<M> WheelQueue<M> {
    pub(crate) fn new() -> WheelQueue<M> {
        WheelQueue {
            buckets: (0..RING).map(|_| VecDeque::new()).collect(),
            occupied: vec![0u64; WORDS].into_boxed_slice(),
            summary: [0; SUMMARY_WORDS],
            cursor: 0,
            far: BinaryHeap::new(),
            cached_next: None,
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    fn set_bit(&mut self, slot: usize) {
        let w = slot >> 6;
        self.occupied[w] |= 1u64 << (slot & 63);
        self.summary[w >> 6] |= 1u64 << (w & 63);
    }

    fn clear_bit(&mut self, slot: usize) {
        let w = slot >> 6;
        self.occupied[w] &= !(1u64 << (slot & 63));
        if self.occupied[w] == 0 {
            self.summary[w >> 6] &= !(1u64 << (w & 63));
        }
    }

    /// Absolute tick of an occupied `slot`, given that all ring content
    /// lies in `[cursor, cursor + RING)`.
    fn tick_of(&self, slot: usize) -> u64 {
        let offset = (slot as u64).wrapping_sub(self.cursor) & RING_MASK;
        self.cursor + offset
    }

    /// First word index in `w_lo..w_hi` whose occupancy word is non-zero,
    /// found through the summary bitmap (a handful of word operations
    /// regardless of gap size).
    fn scan_words(&self, w_lo: usize, w_hi: usize) -> Option<usize> {
        if w_lo >= w_hi {
            return None;
        }
        let s0 = w_lo >> 6;
        let s_end = (w_hi - 1) >> 6;
        // Partial first summary word.
        let mut m = self.summary[s0] & (u64::MAX << (w_lo & 63));
        let mut s = s0;
        while m == 0 && s < s_end {
            s += 1;
            m = self.summary[s];
        }
        if m == 0 {
            return None;
        }
        let w = (s << 6) + m.trailing_zeros() as usize;
        (w < w_hi).then_some(w)
    }

    /// Next occupied slot strictly after `start` in circular ring order
    /// (i.e. the nearest future tick's slot).
    fn next_occupied_after(&self, start: usize) -> Option<usize> {
        let w0 = start >> 6;
        let b0 = start & 63;
        // Remaining bits of the start word, excluding `start` itself.
        let mask = if b0 == 63 { 0 } else { u64::MAX << (b0 + 1) };
        let m = self.occupied[w0] & mask;
        if m != 0 {
            return Some((w0 << 6) + m.trailing_zeros() as usize);
        }
        // Later words, then wrap around; rechecking w0 on the wrapped pass
        // picks up bits below b0 (ticks in the next window revolution).
        let w = self
            .scan_words(w0 + 1, WORDS)
            .or_else(|| self.scan_words(0, w0 + 1))?;
        Some((w << 6) + self.occupied[w].trailing_zeros() as usize)
    }

    fn ring_insert(&mut self, ev: Scheduled<M>) {
        let slot = (ev.at.0 & RING_MASK) as usize;
        self.buckets[slot].push_back(ev);
        self.set_bit(slot);
    }

    /// Moves far-future events that have come inside the window into the
    /// ring. Heap pops arrive in `(at, seq)` order, so same-tick runs land
    /// in a bucket already sorted relative to each other.
    fn drain_far(&mut self) {
        let horizon = self.cursor + RING as u64;
        while self.far.peek().is_some_and(|top| top.at.0 < horizon) {
            let ev = self.far.pop().expect("peeked");
            self.ring_insert(ev);
        }
    }

    pub(crate) fn push(&mut self, ev: Scheduled<M>) {
        debug_assert!(
            ev.at.0 >= self.cursor,
            "event scheduled behind the wheel cursor"
        );
        self.len += 1;
        // Cheap cache maintenance: a known next time only improves; an
        // unknown one (None) stays unknown.
        match self.cached_next {
            Some(Some(t)) if ev.at < t => self.cached_next = Some(Some(ev.at)),
            Some(None) => self.cached_next = Some(Some(ev.at)),
            _ => {}
        }
        if ev.at.0 >= self.cursor + RING as u64 {
            self.far.push(ev);
        } else {
            self.ring_insert(ev);
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Scheduled<M>> {
        if self.len == 0 {
            return None;
        }
        self.cached_next = None;
        self.drain_far();
        loop {
            let cslot = (self.cursor & RING_MASK) as usize;
            if let Some(ev) = self.buckets[cslot].pop_front() {
                self.len -= 1;
                return Some(ev);
            }
            // Current tick exhausted: retire its (possibly stale) bit and
            // advance the cursor to the next occupied tick.
            self.clear_bit(cslot);
            match self.next_occupied_after(cslot) {
                Some(slot) => {
                    self.cursor = self.tick_of(slot);
                    let bucket = &mut self.buckets[slot];
                    if bucket.len() > 1 {
                        bucket.make_contiguous().sort_unstable_by_key(|e| e.seq);
                    }
                }
                None => {
                    // Ring empty; jump to the far heap (non-empty, since
                    // len > 0) and pull its head tick in.
                    self.cursor = self.far.peek()?.at.0;
                    self.drain_far();
                }
            }
        }
    }

    /// Virtual time of the next event, without consuming it or moving the
    /// cursor. Memoized between mutations.
    pub(crate) fn next_time(&mut self) -> Option<Time> {
        if let Some(cached) = self.cached_next {
            return cached;
        }
        let next = self.compute_next_time();
        self.cached_next = Some(next);
        next
    }

    fn compute_next_time(&mut self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        self.drain_far();
        let cslot = (self.cursor & RING_MASK) as usize;
        if !self.buckets[cslot].is_empty() {
            return Some(Time(self.cursor));
        }
        if let Some(slot) = self.next_occupied_after(cslot) {
            if !self.buckets[slot].is_empty() {
                return Some(Time(self.tick_of(slot)));
            }
        }
        self.far.peek().map(|ev| ev.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, seq: u64) -> Scheduled<u8> {
        Scheduled {
            at: Time(at),
            seq,
            to: ActorId(0),
            payload: Payload::Crash,
        }
    }

    #[test]
    fn wheel_matches_heap_on_scattered_schedule() {
        // Ticks spanning in-window, boundary, and far-future ranges,
        // deliberately inserted out of order with seq ties on equal ticks.
        // A plain binary heap (the pre-overhaul queue) is the ordering
        // reference: both must pop in identical ascending (at, seq) order.
        let script: Vec<(u64, u64)> = vec![
            (5, 1),
            (0, 2),
            (5, 3),
            (40_000, 4), // beyond the 32768-tick window: heap fallback
            (32_767, 5), // last in-window tick
            (32_768, 6), // first out-of-window tick
            (1_000, 7),
            (0, 8),
            (999_999, 9),
            (40_000, 10),
        ];
        let mut wheel = WheelQueue::new();
        let mut heap: BinaryHeap<Scheduled<u8>> = BinaryHeap::new();
        for &(at, seq) in &script {
            wheel.push(ev(at, seq));
            heap.push(ev(at, seq));
        }
        assert_eq!(wheel.len(), script.len());
        let mut w = Vec::new();
        while let Some(e) = wheel.pop() {
            w.push((e.at.0, e.seq));
        }
        let mut h = Vec::new();
        while let Some(e) = heap.pop() {
            h.push((e.at.0, e.seq));
        }
        assert_eq!(w, h);
        // And the order really is ascending (at, seq).
        let mut sorted = w.clone();
        sorted.sort();
        assert_eq!(w, sorted);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = WheelQueue::new();
        q.push(ev(10, 1));
        q.push(ev(20, 2));
        assert_eq!(q.next_time(), Some(Time(10)));
        let first = q.pop().unwrap();
        assert_eq!((first.at.0, first.seq), (10, 1));
        // Schedule at the current tick (cursor == 10) and far ahead.
        q.push(ev(10, 3));
        q.push(ev(100_000, 4));
        assert_eq!(q.pop().map(|e| (e.at.0, e.seq)), Some((10, 3)));
        assert_eq!(q.pop().map(|e| (e.at.0, e.seq)), Some((20, 2)));
        assert_eq!(q.next_time(), Some(Time(100_000)));
        assert_eq!(q.pop().map(|e| (e.at.0, e.seq)), Some((100_000, 4)));
        assert_eq!(q.pop().map(|e| (e.at.0, e.seq)), None);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn far_events_merge_into_correct_tick_order() {
        let mut q = WheelQueue::new();
        // Tick 32768 is one past the initial window: seq 1 starts in the
        // far heap. After the cursor advances to 1 the window covers it,
        // so seq 3 goes straight to the ring bucket — which then receives
        // far-drained seq 1 *after* seq 3. The arrival sort must restore
        // seq order.
        q.push(ev(32_768, 1));
        q.push(ev(1, 2));
        assert_eq!(q.pop().map(|e| (e.at.0, e.seq)), Some((1, 2)));
        q.push(ev(32_768, 3));
        assert_eq!(q.pop().map(|e| (e.at.0, e.seq)), Some((32_768, 1)));
        assert_eq!(q.pop().map(|e| (e.at.0, e.seq)), Some((32_768, 3)));
    }

    #[test]
    fn window_revolution_wraps_cleanly() {
        let mut q = WheelQueue::new();
        let mut expect = Vec::new();
        // March the cursor through several full window revolutions.
        for i in 0..10u64 {
            let at = i * 20_000;
            q.push(ev(at, i));
            expect.push((at, i));
        }
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push((e.at.0, e.seq));
        }
        assert_eq!(got, expect);
    }
}
