//! The simulation kernel: event queue, dispatch loop, and the [`Context`]
//! through which actors act on the world.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::actor::{Actor, AnyActor};
use crate::delay::{CostClass, DelayModel};
use crate::event::EventKind;
use crate::ids::{ActorId, TimerId};
use crate::metrics::Metrics;
use crate::obs::{Event, EventBody, ObsRecorder, TraceSink};
use crate::queue::{Payload, Scheduled, WheelQueue};
use crate::time::{Duration, Time};
use crate::trace::Trace;

/// A hook that can override the sampled delay of a specific message.
///
/// Receives `(send time, from, to, &message)` and returns `Some(duration)` to
/// pin that message's latency, or `None` to defer to the link's delay model.
/// This is how the Theorem 6.1 adversary delays a victim's writes while
/// letting everything else flow: the asynchronous model permits *any* finite
/// delay, so any hook-constructed schedule is a legal execution.
///
/// Hooks are `Send` so kernel state can move onto worker threads in the
/// partitioned kernel ([`crate::ParSimulation`]); adversary hooks capture
/// only plain data, so this costs nothing in practice.
pub type DelayHook<M> = Box<dyn Fn(Time, ActorId, ActorId, &M) -> Option<Duration> + Send>;

/// One ripe event offered to a [`ChoiceHook`]: an entry scheduled for the
/// current virtual tick, in kernel (`seq`) order among its alternatives.
///
/// `seq` is the kernel-assigned scheduling sequence number — stable across
/// replays of the same choice vector, which is what lets an explorer
/// identify "the same event" between runs that share a prefix.
pub struct Choice<'a, M> {
    /// The tick every offered alternative is scheduled for.
    pub at: Time,
    /// Kernel scheduling sequence number (the default tie-break key).
    pub seq: u64,
    /// The destination actor.
    pub to: ActorId,
    /// What would be dispatched.
    pub payload: ChoicePayload<'a, M>,
}

/// The payload of a [`Choice`]: a deliverable event or a scheduled crash.
pub enum ChoicePayload<'a, M> {
    /// An event delivery (message, timer, start, leader change).
    Deliver(&'a EventKind<M>),
    /// A scheduled crash of the destination actor.
    Crash,
}

/// A schedule-choice hook (see [`Simulation::set_choice_hook`]).
///
/// While installed, the kernel calls it on **every** dispatch with the
/// full slate of events ripe at the current tick, in ascending `seq`
/// order, and dispatches the alternative whose index it returns
/// (out-of-range indices clamp to the last alternative). Calls with a
/// single alternative are forced — the return value is ignored — but are
/// still made, so an explorer can observe the complete dispatch sequence
/// (sleep-set bookkeeping needs the forced events too).
///
/// Determinism contract: a hook that always returns 0 reproduces the
/// unhooked `(time, seq)` order bit-for-bit, and replaying any fixed
/// choice vector is bit-deterministic.
pub type ChoiceHook<M> = Box<dyn FnMut(Time, &[Choice<'_, M>]) -> usize>;

/// Generation-stamped timer slots: O(1) arm/cancel/fire with bounded
/// memory. A [`TimerId`] encodes `(slot, generation)`; cancelling or
/// firing bumps the slot's generation, so stale ids from already-fired or
/// already-cancelled timers are recognized without any tombstone set (the
/// retired pre-overhaul kernel's `BTreeSet<TimerId>` leaked an entry per
/// cancel-after-fire, growing without bound in long adversary runs).
#[derive(Debug, Default)]
pub(crate) struct TimerTable {
    gens: Vec<u32>,
    free: Vec<u32>,
}

impl TimerTable {
    fn encode(slot: u32, gen: u32) -> TimerId {
        TimerId(((gen as u64) << 32) | slot as u64)
    }

    fn decode(id: TimerId) -> (u32, u32) {
        (id.0 as u32, (id.0 >> 32) as u32)
    }

    /// Arms a timer, returning its id.
    fn arm(&mut self) -> TimerId {
        match self.free.pop() {
            Some(slot) => Self::encode(slot, self.gens[slot as usize]),
            None => {
                let slot = self.gens.len() as u32;
                self.gens.push(0);
                Self::encode(slot, 0)
            }
        }
    }

    /// Retires a timer id if it is still live; returns whether it was.
    fn retire(&mut self, id: TimerId) -> bool {
        let (slot, gen) = Self::decode(id);
        match self.gens.get_mut(slot as usize) {
            Some(g) if *g == gen => {
                *g = g.wrapping_add(1);
                self.free.push(slot);
                true
            }
            _ => false,
        }
    }

    /// Live (armed, not yet fired or cancelled) timer count.
    fn live(&self) -> usize {
        self.gens.len() - self.free.len()
    }
}

/// The per-kernel dispatch state shared by [`Simulation`] (one instance)
/// and the partitioned kernel (one instance per partition, each with its
/// own RNG stream): randomness, metrics, trace, link models, timers, and
/// the pending-effects buffer a [`Context`] writes into.
pub(crate) struct Core<M> {
    pub(crate) rng: StdRng,
    pub(crate) metrics: Metrics,
    pub(crate) trace: Trace,
    pub(crate) obs: ObsRecorder,
    pub(crate) default_delay: DelayModel,
    pub(crate) link_overrides: BTreeMap<(ActorId, ActorId), DelayModel>,
    pub(crate) delay_hook: Option<DelayHook<M>>,
    pub(crate) timers: TimerTable,
    /// Events emitted by the currently-dispatching actor, applied afterwards.
    pub(crate) pending: Vec<(Time, ActorId, EventKind<M>)>,
}

impl<M> Core<M> {
    /// A fresh dispatch core drawing randomness from `rng`.
    pub(crate) fn new(rng: StdRng) -> Core<M> {
        Core {
            rng,
            metrics: Metrics::new(),
            trace: Trace::new(),
            obs: ObsRecorder::new(),
            default_delay: DelayModel::synchronous(),
            link_overrides: BTreeMap::new(),
            delay_hook: None,
            timers: TimerTable::default(),
            pending: Vec::new(),
        }
    }

    /// Retires a timer slot (used by partitioned dispatch when dropping
    /// events to crashed actors).
    pub(crate) fn retire_timer(&mut self, id: TimerId) -> bool {
        self.timers.retire(id)
    }
}

/// The handle through which an actor affects the simulated world during one
/// event dispatch. All effects become visible only after the handler returns.
pub struct Context<'a, M> {
    me: ActorId,
    now: Time,
    core: &'a mut Core<M>,
}

impl<'a, M> Context<'a, M> {
    /// Builds the dispatch handle for one event delivery (kernel-internal;
    /// both the monolithic and the partitioned kernel construct these).
    pub(crate) fn new(me: ActorId, now: Time, core: &'a mut Core<M>) -> Context<'a, M> {
        Context { me, now, core }
    }

    /// The actor currently executing.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Sends `msg` to `to` over the link, with latency from the link's delay
    /// model (or the delay hook, if installed and it claims the message).
    /// The message is charged as a plain inline send
    /// ([`CostClass::SEND`]); traffic modelling a specific RDMA verb
    /// should use [`Context::send_classed`].
    #[inline]
    pub fn send(&mut self, to: ActorId, msg: M) {
        self.send_classed(to, msg, CostClass::SEND);
    }

    /// Sends `msg` to `to`, charged under the link's delay model as cost
    /// class `class` (verb, payload size, doorbell batch width). Only
    /// [`DelayModel::Rdma`](crate::DelayModel::Rdma) links distinguish
    /// classes; under every other model this is exactly [`Context::send`],
    /// including RNG draws. A delay hook, if installed, still takes
    /// precedence over the model.
    pub fn send_classed(&mut self, to: ActorId, msg: M, class: CostClass) {
        let hooked = self
            .core
            .delay_hook
            .as_ref()
            .and_then(|h| h(self.now, self.me, to, &msg));
        let delay = match hooked {
            Some(d) => d,
            None => {
                // Split borrows: the model is read from one field while the
                // RNG (a different field) advances — no per-send clone.
                let Core {
                    link_overrides,
                    default_delay,
                    rng,
                    ..
                } = &mut *self.core;
                let model = if link_overrides.is_empty() {
                    &*default_delay
                } else {
                    link_overrides.get(&(self.me, to)).unwrap_or(default_delay)
                };
                model.sample_classed(self.now, class, rng)
            }
        };
        self.core.metrics.messages_sent += 1;
        let from = self.me;
        let deliver_at = self.now + delay;
        // Observability reads the already-sampled delay; it never draws
        // randomness or alters scheduling.
        let (now, me) = (self.now, self.me);
        self.core
            .obs
            .record(now, me, || EventBody::Send { to, deliver_at });
        self.core
            .pending
            .push((deliver_at, to, EventKind::Msg { from, msg }));
    }

    /// Arms a one-shot timer firing after `after`; `tag` distinguishes
    /// purposes within the actor. Returns an id usable with
    /// [`Context::cancel_timer`].
    pub fn set_timer(&mut self, after: Duration, tag: u64) -> TimerId {
        let id = self.core.timers.arm();
        let fire_at = self.now + after;
        let (now, me) = (self.now, self.me);
        self.core
            .obs
            .record(now, me, || EventBody::TimerSet { tag, fire_at });
        self.core
            .pending
            .push((fire_at, self.me, EventKind::Timer { id, tag }));
        id
    }

    /// Cancels a previously armed timer. Cancelling an already-fired (or
    /// already-cancelled) timer is a no-op and costs no memory.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.core.timers.retire(id);
    }

    /// Records that this actor decided (for the k-deciding latency metric).
    pub fn mark_decided(&mut self) {
        let (me, now) = (self.me, self.now);
        self.core.metrics.record_decision(me, now);
    }

    /// Records that this actor aborted a fast path.
    pub fn mark_aborted(&mut self) {
        let (me, now) = (self.me, self.now);
        self.core.metrics.record_abort(me, now);
    }

    /// The run's deterministic random source.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.core.rng
    }

    /// Mutable access to the run metrics (used by substrate layers to count
    /// memory operations).
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.core.metrics
    }

    /// Whether trace recording is active (so callers can skip building
    /// expensive note strings).
    pub fn trace_enabled(&self) -> bool {
        self.core.trace.is_enabled()
    }

    /// Appends a line to the trace, if tracing is enabled. Prefer
    /// [`Context::note_with`] on hot paths: this variant's argument is
    /// built by the caller even when tracing is off.
    pub fn note(&mut self, text: impl Into<String>) {
        let (me, now) = (self.me, self.now);
        self.core.trace.push(now, me, text.into());
    }

    /// Appends a lazily-built line to the trace; `f` runs only when
    /// tracing is enabled.
    pub fn note_with(&mut self, f: impl FnOnce() -> String) {
        let (me, now) = (self.me, self.now);
        self.core.trace.push_with(now, me, f);
    }

    /// Whether structured event recording ([`crate::obs`]) is active, so
    /// layers can skip building expensive observation payloads.
    pub fn obs_enabled(&self) -> bool {
        self.core.obs.is_enabled()
    }

    /// Records a span lifecycle mark ([`EventBody::Mark`]) if structured
    /// recording is enabled: `span` identifies the span (e.g. a client
    /// command id), `stage` the lifecycle stage, `data` one
    /// application-defined word. Free when recording is disabled.
    pub fn obs_mark(&mut self, span: u64, stage: u8, data: u64) {
        let (me, now) = (self.me, self.now);
        self.core
            .obs
            .record(now, me, || EventBody::Mark { span, stage, data });
    }

    /// Records a lazily-built structured note ([`EventBody::Note`]); `f`
    /// runs only when structured recording is enabled.
    pub fn obs_note_with(&mut self, f: impl FnOnce() -> String) {
        let (me, now) = (self.me, self.now);
        self.core.obs.record(now, me, || EventBody::Note {
            text: std::borrow::Cow::Owned(f()),
        });
    }

    /// Records a memory-operation observation ([`EventBody::MemOp`]);
    /// called by the memory-client substrate alongside its op counters.
    pub fn obs_mem_op(&mut self, op: &'static str) {
        let (me, now) = (self.me, self.now);
        self.core.obs.record(now, me, || EventBody::MemOp { op });
    }
}

/// Why a [`Simulation::run_until`] loop stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The event queue drained: nothing will ever happen again.
    Quiescent,
    /// The caller's predicate returned true.
    Predicate,
    /// Virtual time exceeded the given bound.
    TimeLimit,
}

/// A deterministic discrete-event simulation over message type `M`.
///
/// # Examples
///
/// ```
/// use simnet::{Actor, Context, EventKind, Simulation, Time};
///
/// struct Echo;
/// impl Actor<&'static str> for Echo {
///     fn on_event(&mut self, ctx: &mut Context<'_, &'static str>, ev: EventKind<&'static str>) {
///         if let EventKind::Msg { from, msg } = ev {
///             if msg == "ping" {
///                 ctx.send(from, "pong");
///             }
///         }
///     }
/// }
///
/// struct Probe { got_pong: bool }
/// impl Actor<&'static str> for Probe {
///     fn on_event(&mut self, ctx: &mut Context<'_, &'static str>, ev: EventKind<&'static str>) {
///         match ev {
///             EventKind::Start => ctx.send(simnet::ActorId(0), "ping"),
///             EventKind::Msg { msg: "pong", .. } => self.got_pong = true,
///             _ => {}
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(1);
/// let echo = sim.add(Echo);
/// let probe = sim.add(Probe { got_pong: false });
/// sim.run_to_quiescence(Time::from_delays(10));
/// assert!(sim.actor_as::<Probe>(probe).unwrap().got_pong);
/// assert_eq!(echo, simnet::ActorId(0));
/// // One delay out, one delay back:
/// assert_eq!(sim.now(), Time::from_delays(2));
/// ```
pub struct Simulation<M> {
    actors: Vec<Option<Box<dyn AnyActor<M>>>>,
    /// Crash flags, indexed densely by actor.
    crashed: Vec<bool>,
    queue: WheelQueue<M>,
    seq: u64,
    now: Time,
    started: bool,
    /// Recycled buffer that `pending` swaps with during dispatch, so
    /// dispatch never reallocates it.
    pending_scratch: Vec<(Time, ActorId, EventKind<M>)>,
    /// Recycled buffer holding the current tick's ripe events while a
    /// choice hook picks among them.
    ripe_scratch: Vec<Scheduled<M>>,
    choice_hook: Option<ChoiceHook<M>>,
    core: Core<M>,
}

impl<M: 'static> Simulation<M> {
    /// Creates an empty simulation with a seeded random source and
    /// synchronous (one-delay) links.
    pub fn new(seed: u64) -> Simulation<M> {
        Simulation {
            actors: Vec::new(),
            crashed: Vec::new(),
            queue: WheelQueue::new(),
            seq: 0,
            now: Time::ZERO,
            started: false,
            pending_scratch: Vec::new(),
            ripe_scratch: Vec::new(),
            choice_hook: None,
            core: Core::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Registers an actor, returning its id. Ids are dense and assigned in
    /// registration order.
    pub fn add<T: Actor<M>>(&mut self, actor: T) -> ActorId {
        self.add_boxed(Box::new(actor))
    }

    /// Registers a boxed actor.
    pub fn add_boxed(&mut self, actor: Box<dyn AnyActor<M>>) -> ActorId {
        assert!(
            !self.started,
            "cannot add actors after the simulation started"
        );
        let id = ActorId(self.actors.len() as u32);
        self.actors.push(Some(actor));
        self.crashed.push(false);
        id
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Sets the delay model used by links with no per-link override.
    pub fn set_default_delay(&mut self, model: DelayModel) {
        self.core.default_delay = model;
    }

    /// Overrides the delay model of the directed link `from -> to`.
    pub fn set_link_delay(&mut self, from: ActorId, to: ActorId, model: DelayModel) {
        self.core.link_overrides.insert((from, to), model);
    }

    /// Installs a per-message delay override hook (see [`DelayHook`]).
    pub fn set_delay_hook(&mut self, hook: DelayHook<M>) {
        self.core.delay_hook = Some(hook);
    }

    /// Installs a schedule-choice hook (see [`ChoiceHook`]): on each
    /// dispatch the hook is offered every event ripe at the current tick
    /// and picks which one runs next. Same-tick ordering is the only
    /// schedule freedom the kernel has — events at different ticks stay
    /// time-ordered — so a hook enumerates exactly the legal schedules.
    pub fn set_choice_hook(&mut self, hook: ChoiceHook<M>) {
        self.choice_hook = Some(hook);
    }

    /// Removes the schedule-choice hook, restoring plain `(time, seq)`
    /// dispatch order.
    pub fn clear_choice_hook(&mut self) {
        self.choice_hook = None;
    }

    /// Enables event tracing with the given entry cap.
    pub fn enable_trace(&mut self, cap: usize) {
        self.core.trace.enable(cap);
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    /// Enables structured event recording (see [`crate::obs`]). Strictly
    /// read-only: a recording run is bit-identical to a non-recording one.
    pub fn enable_obs(&mut self) {
        self.core.obs.enable();
    }

    /// Enables structured recording and streams every event into `sink`
    /// as it is recorded (the in-kernel buffer still fills too).
    pub fn attach_obs_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.core.obs.attach_sink(sink);
    }

    /// Drains the structured events recorded so far, in recording order.
    pub fn take_obs_events(&mut self) -> Vec<Event> {
        self.core.obs.take()
    }

    /// Schedules an event for delivery to `to` at `at` (clamped to now).
    /// This is how harnesses inject leader-oracle announcements or any
    /// scripted stimulus.
    pub fn schedule(&mut self, at: Time, to: ActorId, ev: EventKind<M>) {
        let at = at.max(self.now);
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq: self.seq,
            to,
            payload: Payload::Deliver(ev),
        });
    }

    /// Schedules `actor` to crash at `at`. From that instant the actor
    /// receives no further events: a crashed process takes no steps, and a
    /// crashed memory hangs (its clients' outstanding operations never
    /// complete) — exactly the paper's failure semantics.
    pub fn crash_at(&mut self, actor: ActorId, at: Time) {
        let at = at.max(self.now);
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq: self.seq,
            to: actor,
            payload: Payload::Crash,
        });
    }

    /// Announces `leader` to every actor in `targets` at time `at`,
    /// emulating the Ω leader oracle.
    pub fn announce_leader(&mut self, at: Time, targets: &[ActorId], leader: ActorId) {
        for &t in targets {
            self.schedule(at, t, EventKind::LeaderChange { leader });
        }
    }

    /// Whether `actor` has crashed.
    pub fn is_crashed(&self, actor: ActorId) -> bool {
        self.crashed.get(actor.index()).copied().unwrap_or(false)
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Run metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// Live (armed, not yet fired or cancelled) timers, for leak tests.
    pub fn live_timers(&self) -> usize {
        self.core.timers.live()
    }

    /// Downcasts actor `id` to its concrete type for inspection.
    pub fn actor_as<T: 'static>(&self, id: ActorId) -> Option<&T> {
        self.actors
            .get(id.index())?
            .as_ref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutable variant of [`Simulation::actor_as`].
    pub fn actor_as_mut<T: 'static>(&mut self, id: ActorId) -> Option<&mut T> {
        self.actors
            .get_mut(id.index())?
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            let to = ActorId(i as u32);
            self.seq += 1;
            self.queue.push(Scheduled {
                at: self.now,
                seq: self.seq,
                to,
                payload: Payload::Deliver(EventKind::Start),
            });
        }
    }

    fn mark_crashed(&mut self, actor: ActorId) {
        if let Some(flag) = self.crashed.get_mut(actor.index()) {
            *flag = true;
        } else {
            // Crash scheduled for an unregistered id: remember it anyway.
            self.crashed.resize(actor.index() + 1, false);
            self.crashed[actor.index()] = true;
        }
    }

    /// Dispatches the next event. Returns false if the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let depth = self.queue.len() as u64;
        if depth > self.core.metrics.peak_queue_len {
            self.core.metrics.peak_queue_len = depth;
        }
        let sched = if self.choice_hook.is_some() {
            match self.pop_chosen() {
                Some(s) => s,
                None => return false,
            }
        } else {
            match self.queue.pop() {
                Some(s) => s,
                None => return false,
            }
        };
        self.dispatch(sched, depth);
        true
    }

    /// Pops the event a [`ChoiceHook`] selects among everything ripe at
    /// the next tick. Unchosen alternatives are pushed straight back:
    /// their bucket is empty, the cursor has already arrived, and they are
    /// re-inserted in ascending `seq` order, so the bucket stays sorted
    /// and future pops (and any same-tick events the dispatch emits, which
    /// get strictly larger seqs) keep the canonical order.
    fn pop_chosen(&mut self) -> Option<Scheduled<M>> {
        let t = self.queue.next_time()?;
        let mut ripe = std::mem::take(&mut self.ripe_scratch);
        debug_assert!(ripe.is_empty());
        while self.queue.next_time() == Some(t) {
            ripe.push(self.queue.pop().expect("next_time promised an event"));
        }
        let choices: Vec<Choice<'_, M>> = ripe
            .iter()
            .map(|s| Choice {
                at: s.at,
                seq: s.seq,
                to: s.to,
                payload: match &s.payload {
                    Payload::Deliver(ev) => ChoicePayload::Deliver(ev),
                    Payload::Crash => ChoicePayload::Crash,
                },
            })
            .collect();
        let hook = self.choice_hook.as_mut().expect("pop_chosen without hook");
        let idx = hook(t, &choices).min(ripe.len() - 1);
        drop(choices);
        let chosen = ripe.remove(idx);
        for rest in ripe.drain(..) {
            self.queue.push(rest);
        }
        self.ripe_scratch = ripe;
        Some(chosen)
    }

    /// Applies one popped queue entry: advances time, accounts metrics,
    /// and runs the crash/deliver logic. `depth` is the queue length
    /// sampled before the pop.
    fn dispatch(&mut self, sched: Scheduled<M>, depth: u64) {
        debug_assert!(sched.at >= self.now, "event queue went backwards");
        self.now = sched.at;
        self.core.metrics.events_dispatched += 1;
        self.core.metrics.sample_queue_depth(self.now, depth);
        match sched.payload {
            Payload::Crash => {
                self.mark_crashed(sched.to);
                self.core.metrics.dispatches.crash += 1;
                let (now, to) = (self.now, sched.to);
                self.core.trace.push(now, to, "CRASH");
                self.core.obs.record(now, to, || EventBody::Crash);
            }
            Payload::Deliver(ev) => {
                if self.is_crashed(sched.to) {
                    self.core.metrics.dispatches.dropped += 1;
                    let (now, to) = (self.now, sched.to);
                    let kind = ev.kind_name();
                    self.core
                        .trace
                        .push_with(now, to, || format!("dropped {kind} (crashed)"));
                    self.core
                        .obs
                        .record(now, to, || EventBody::Dropped { kind });
                    // Never-delivered timers still release their slot.
                    if let EventKind::Timer { id, .. } = ev {
                        self.core.timers.retire(id);
                    }
                    return;
                }
                match &ev {
                    EventKind::Start => self.core.metrics.dispatches.start += 1,
                    EventKind::Msg { .. } => self.core.metrics.dispatches.msg += 1,
                    EventKind::Timer { .. } => self.core.metrics.dispatches.timer += 1,
                    EventKind::LeaderChange { .. } => self.core.metrics.dispatches.leader += 1,
                }
                if let EventKind::Timer { id, .. } = ev {
                    if !self.core.timers.retire(id) {
                        return;
                    }
                    self.core.metrics.timers_fired += 1;
                }
                if let EventKind::Msg { .. } = ev {
                    self.core.metrics.messages_delivered += 1;
                }
                if self.core.trace.is_enabled() {
                    let (now, to) = (self.now, sched.to);
                    // Static text per event kind: no allocation.
                    let line: &'static str = match &ev {
                        EventKind::Start => "deliver start",
                        EventKind::Msg { .. } => "deliver msg",
                        EventKind::Timer { .. } => "deliver timer",
                        EventKind::LeaderChange { .. } => "deliver leader",
                    };
                    self.core.trace.push(now, to, line);
                }
                if self.core.obs.is_enabled() {
                    let (now, to) = (self.now, sched.to);
                    match &ev {
                        EventKind::Start => self
                            .core
                            .obs
                            .record(now, to, || EventBody::Dispatch { kind: "start" }),
                        EventKind::Msg { from, .. } => {
                            let from = *from;
                            self.core
                                .obs
                                .record(now, to, || EventBody::Deliver { from });
                        }
                        EventKind::Timer { tag, .. } => {
                            let tag = *tag;
                            self.core
                                .obs
                                .record(now, to, || EventBody::TimerFired { tag });
                        }
                        EventKind::LeaderChange { leader } => {
                            let leader = *leader;
                            self.core
                                .obs
                                .record(now, to, || EventBody::LeaderChange { leader });
                        }
                    }
                }
                let mut actor = self.actors[sched.to.index()]
                    .take()
                    .expect("actor is being dispatched re-entrantly");
                {
                    let mut ctx = Context {
                        me: sched.to,
                        now: self.now,
                        core: &mut self.core,
                    };
                    actor.on_event(&mut ctx, ev);
                }
                self.actors[sched.to.index()] = Some(actor);
                // Swap the pending buffer out, drain it, swap it back:
                // its capacity is reused across every dispatch.
                let mut batch = std::mem::replace(
                    &mut self.core.pending,
                    std::mem::take(&mut self.pending_scratch),
                );
                for (at, to, ev) in batch.drain(..) {
                    self.seq += 1;
                    self.queue.push(Scheduled {
                        at,
                        seq: self.seq,
                        to,
                        payload: Payload::Deliver(ev),
                    });
                }
                self.pending_scratch = batch;
            }
        }
    }

    /// Runs until the predicate holds (checked between events), the queue
    /// drains, or virtual time passes `max`.
    pub fn run_until(
        &mut self,
        max: Time,
        mut pred: impl FnMut(&Simulation<M>) -> bool,
    ) -> RunOutcome {
        self.ensure_started();
        loop {
            if pred(self) {
                return RunOutcome::Predicate;
            }
            match self.queue.next_time() {
                None => return RunOutcome::Quiescent,
                Some(next) if next > max => return RunOutcome::TimeLimit,
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Runs until no events remain or virtual time passes `max`.
    pub fn run_to_quiescence(&mut self, max: Time) -> RunOutcome {
        self.run_until(max, |_| false)
    }
}

impl<M: 'static> std::fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("actors", &self.actors.len())
            .field(
                "crashed",
                &self
                    .crashed
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c)
                    .map(|(i, _)| ActorId(i as u32))
                    .collect::<Vec<_>>(),
            )
            .field("queued", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    enum TMsg {
        Ping(u32),
        Pong(u32),
    }

    struct Ponger {
        pongs_sent: u32,
    }
    impl Actor<TMsg> for Ponger {
        fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
            if let EventKind::Msg {
                from,
                msg: TMsg::Ping(n),
            } = ev
            {
                self.pongs_sent += 1;
                ctx.send(from, TMsg::Pong(n));
            }
        }
    }

    struct Pinger {
        target: ActorId,
        rounds: u32,
        pongs: Vec<u32>,
        decided_at: Option<Time>,
    }
    impl Actor<TMsg> for Pinger {
        fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
            match ev {
                EventKind::Start => ctx.send(self.target, TMsg::Ping(0)),
                EventKind::Msg {
                    msg: TMsg::Pong(n), ..
                } => {
                    self.pongs.push(n);
                    if n + 1 < self.rounds {
                        ctx.send(self.target, TMsg::Ping(n + 1));
                    } else {
                        ctx.mark_decided();
                        self.decided_at = Some(ctx.now());
                    }
                }
                _ => {}
            }
        }
    }

    fn build(rounds: u32) -> (Simulation<TMsg>, ActorId, ActorId) {
        let mut sim = Simulation::new(99);
        let ponger = sim.add(Ponger { pongs_sent: 0 });
        let pinger = sim.add(Pinger {
            target: ponger,
            rounds,
            pongs: Vec::new(),
            decided_at: None,
        });
        (sim, ponger, pinger)
    }

    #[test]
    fn ping_pong_latency_is_two_delays_per_round() {
        let (mut sim, _, pinger) = build(3);
        let out = sim.run_to_quiescence(Time::from_delays(100));
        assert_eq!(out, RunOutcome::Quiescent);
        let p = sim.actor_as::<Pinger>(pinger).unwrap();
        assert_eq!(p.pongs, vec![0, 1, 2]);
        // 3 round trips at 2 delays each.
        assert_eq!(p.decided_at, Some(Time::from_delays(6)));
        assert_eq!(sim.metrics().first_decision_delays(), Some(6.0));
        assert_eq!(sim.metrics().messages_sent, 6);
        assert_eq!(sim.metrics().messages_delivered, 6);
    }

    #[test]
    fn crashed_actor_receives_nothing() {
        let (mut sim, ponger, pinger) = build(5);
        sim.crash_at(ponger, Time::from_delays(3));
        sim.run_to_quiescence(Time::from_delays(100));
        let p = sim.actor_as::<Pinger>(pinger).unwrap();
        // Rounds complete at 2 and 4... but the ping landing after t=3 is
        // dropped, so only the first round's pong (t=2) arrives.
        assert_eq!(p.pongs, vec![0]);
        assert!(sim.is_crashed(ponger));
        assert_eq!(sim.metrics().first_decision(), None);
    }

    #[test]
    fn run_until_predicate() {
        let (mut sim, _, pinger) = build(10);
        let out = sim.run_until(Time::from_delays(1000), |s| {
            s.actor_as::<Pinger>(pinger)
                .is_some_and(|p| p.pongs.len() >= 2)
        });
        assert_eq!(out, RunOutcome::Predicate);
        assert_eq!(sim.now(), Time::from_delays(4));
    }

    #[test]
    fn time_limit_respected() {
        let (mut sim, _, _) = build(1_000);
        let out = sim.run_to_quiescence(Time::from_delays(7));
        assert_eq!(out, RunOutcome::TimeLimit);
        assert!(sim.now() <= Time::from_delays(7));
    }

    #[test]
    fn determinism_across_identical_runs() {
        let mk = || {
            let mut sim: Simulation<TMsg> = Simulation::new(5);
            sim.set_default_delay(DelayModel::Uniform {
                lo: Duration::from_delays(1),
                hi: Duration::from_delays(4),
            });
            let ponger = sim.add(Ponger { pongs_sent: 0 });
            let pinger = sim.add(Pinger {
                target: ponger,
                rounds: 8,
                pongs: Vec::new(),
                decided_at: None,
            });
            sim.run_to_quiescence(Time::from_delays(10_000));
            sim.actor_as::<Pinger>(pinger).unwrap().decided_at
        };
        assert_eq!(mk(), mk());
    }

    struct TimerActor {
        fired: Vec<u64>,
        cancel_second: bool,
    }
    impl Actor<TMsg> for TimerActor {
        fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
            match ev {
                EventKind::Start => {
                    ctx.set_timer(Duration::from_delays(1), 1);
                    let t2 = ctx.set_timer(Duration::from_delays(2), 2);
                    ctx.set_timer(Duration::from_delays(3), 3);
                    if self.cancel_second {
                        ctx.cancel_timer(t2);
                    }
                }
                EventKind::Timer { tag, .. } => self.fired.push(tag),
                _ => {}
            }
        }
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        let mut sim: Simulation<TMsg> = Simulation::new(1);
        let a = sim.add(TimerActor {
            fired: Vec::new(),
            cancel_second: true,
        });
        sim.run_to_quiescence(Time::from_delays(10));
        assert_eq!(sim.actor_as::<TimerActor>(a).unwrap().fired, vec![1, 3]);
    }

    /// Cancelling timers that already fired must not accumulate state
    /// (the retired pre-overhaul kernel leaked a tombstone per such
    /// cancel).
    struct CancelAfterFire {
        last: Option<TimerId>,
        rounds: u32,
    }
    impl Actor<TMsg> for CancelAfterFire {
        fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
            match ev {
                EventKind::Start => {
                    self.last = Some(ctx.set_timer(Duration::from_delays(1), 0));
                }
                EventKind::Timer { .. } => {
                    // The timer that just fired is cancelled retroactively —
                    // a no-op semantically, a leak in the legacy kernel.
                    if let Some(id) = self.last.take() {
                        ctx.cancel_timer(id);
                    }
                    if self.rounds > 0 {
                        self.rounds -= 1;
                        self.last = Some(ctx.set_timer(Duration::from_delays(1), 0));
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn cancel_after_fire_does_not_leak() {
        let mut sim: Simulation<TMsg> = Simulation::new(1);
        sim.add(CancelAfterFire {
            last: None,
            rounds: 500,
        });
        sim.run_to_quiescence(Time::from_delays(10_000));
        assert_eq!(sim.live_timers(), 0, "timer slots leaked");
    }

    #[test]
    fn timer_ids_are_reused_without_confusion() {
        // Arm/cancel churn: generation stamps must keep stale ids inert.
        struct Churn {
            fired: u32,
        }
        impl Actor<TMsg> for Churn {
            fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
                match ev {
                    EventKind::Start => {
                        for _ in 0..100 {
                            let id = ctx.set_timer(Duration::from_delays(1), 7);
                            ctx.cancel_timer(id);
                            // Double-cancel is a no-op.
                            ctx.cancel_timer(id);
                        }
                        ctx.set_timer(Duration::from_delays(2), 9);
                    }
                    EventKind::Timer { tag, .. } => {
                        assert_eq!(tag, 9, "a cancelled timer fired");
                        self.fired += 1;
                    }
                    _ => {}
                }
            }
        }
        let mut sim: Simulation<TMsg> = Simulation::new(1);
        let a = sim.add(Churn { fired: 0 });
        sim.run_to_quiescence(Time::from_delays(10));
        assert_eq!(sim.actor_as::<Churn>(a).unwrap().fired, 1);
        assert_eq!(sim.live_timers(), 0);
    }

    #[test]
    fn peak_queue_len_is_recorded() {
        let (mut sim, _, _) = build(5);
        assert_eq!(sim.metrics().peak_queue_len, 0);
        sim.run_to_quiescence(Time::from_delays(100));
        // Both Start events were queued before the first dispatch.
        assert!(sim.metrics().peak_queue_len >= 2);
    }

    #[test]
    fn leader_change_is_delivered() {
        struct L {
            leader: Option<ActorId>,
        }
        impl Actor<TMsg> for L {
            fn on_event(&mut self, _ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
                if let EventKind::LeaderChange { leader } = ev {
                    self.leader = Some(leader);
                }
            }
        }
        let mut sim: Simulation<TMsg> = Simulation::new(1);
        let a = sim.add(L { leader: None });
        sim.announce_leader(Time::from_delays(2), &[a], ActorId(9));
        sim.run_to_quiescence(Time::from_delays(10));
        assert_eq!(sim.actor_as::<L>(a).unwrap().leader, Some(ActorId(9)));
    }

    #[test]
    fn delay_hook_overrides_link() {
        let mut sim = Simulation::new(1);
        let ponger = sim.add(Ponger { pongs_sent: 0 });
        let pinger = sim.add(Pinger {
            target: ponger,
            rounds: 1,
            pongs: Vec::new(),
            decided_at: None,
        });
        // Delay all pings by 10 delays; pongs use the default 1.
        sim.set_delay_hook(Box::new(|_, _, _, m| match m {
            TMsg::Ping(_) => Some(Duration::from_delays(10)),
            _ => None,
        }));
        sim.run_to_quiescence(Time::from_delays(100));
        let p = sim.actor_as::<Pinger>(pinger).unwrap();
        assert_eq!(p.decided_at, Some(Time::from_delays(11)));
    }

    #[test]
    fn obs_records_typed_events_and_stays_read_only() {
        use crate::obs::EventBody;
        let traced = || {
            let (mut sim, ponger, _) = build(4);
            sim.enable_obs();
            sim.crash_at(ponger, Time::from_delays(3));
            sim.run_to_quiescence(Time::from_delays(100));
            let evs = sim.take_obs_events();
            (evs, sim.now(), sim.metrics().events_dispatched)
        };
        let untraced = || {
            let (mut sim, ponger, _) = build(4);
            sim.crash_at(ponger, Time::from_delays(3));
            sim.run_to_quiescence(Time::from_delays(100));
            (sim.now(), sim.metrics().events_dispatched)
        };
        let (evs, now, dispatched) = traced();
        // Read-only contract: recording changes nothing observable.
        assert_eq!((now, dispatched), untraced());
        let (evs2, ..) = traced();
        assert_eq!(evs, evs2, "typed events are deterministic");
        assert!(evs.iter().any(|e| matches!(e.body, EventBody::Crash)));
        assert!(evs.iter().any(|e| matches!(e.body, EventBody::Send { .. })));
        assert!(evs
            .iter()
            .any(|e| matches!(e.body, EventBody::Deliver { .. })));
        assert!(evs
            .iter()
            .any(|e| matches!(e.body, EventBody::Dropped { .. })));
        // Monolithic kernel: everything is partition 0, seqs are dense.
        assert!(evs.iter().all(|e| e.partition == 0));
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn obs_sink_streams_alongside_buffer() {
        use crate::obs::CountingSink;
        let (mut sim, _, _) = build(3);
        sim.attach_obs_sink(Box::new(CountingSink::new()));
        sim.run_to_quiescence(Time::from_delays(100));
        let buffered = sim.take_obs_events().len();
        assert!(buffered > 0);
    }

    #[test]
    fn per_kind_dispatch_counts_sum_to_total() {
        let (mut sim, ponger, _) = build(4);
        sim.crash_at(ponger, Time::from_delays(3));
        sim.run_to_quiescence(Time::from_delays(100));
        let m = sim.metrics();
        assert_eq!(m.dispatches.total(), m.events_dispatched);
        assert!(m.dispatches.msg > 0);
        assert_eq!(m.dispatches.crash, 1);
        assert!(m.dispatches.dropped > 0);
        assert!(!m.queue_depth_samples().is_empty());
    }

    /// Two peers ping a shared collector at the same tick every round, so
    /// every round is a genuine same-tick choice point at the collector.
    struct Fanner {
        target: ActorId,
        id: u32,
        rounds: u32,
    }
    impl Actor<TMsg> for Fanner {
        fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
            match ev {
                EventKind::Start => ctx.send(self.target, TMsg::Ping(self.id)),
                EventKind::Msg {
                    msg: TMsg::Pong(n), ..
                } if n + 1 < self.rounds => {
                    ctx.send(self.target, TMsg::Ping(self.id));
                }
                _ => {}
            }
        }
    }
    struct FanCollector {
        arrivals: Vec<u32>,
        round: u32,
    }
    impl Actor<TMsg> for FanCollector {
        fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
            if let EventKind::Msg {
                from,
                msg: TMsg::Ping(id),
            } = ev
            {
                self.arrivals.push(id);
                ctx.send(from, TMsg::Pong(self.round / 2));
                self.round += 1;
            }
        }
    }

    fn build_fan(rounds: u32) -> (Simulation<TMsg>, ActorId) {
        let mut sim: Simulation<TMsg> = Simulation::new(17);
        let collector = sim.add(FanCollector {
            arrivals: Vec::new(),
            round: 0,
        });
        for id in 0..2 {
            sim.add(Fanner {
                target: collector,
                id,
                rounds,
            });
        }
        (sim, collector)
    }

    fn fan_outcome(sim: &mut Simulation<TMsg>, collector: ActorId) -> (Vec<u32>, Time, u64, u64) {
        sim.enable_trace(10_000);
        sim.run_to_quiescence(Time::from_delays(1_000));
        let arrivals = sim
            .actor_as::<FanCollector>(collector)
            .unwrap()
            .arrivals
            .clone();
        let mut h = 0xcbf29ce484222325u64;
        for line in sim.trace().dump().bytes() {
            h = (h ^ line as u64).wrapping_mul(0x100000001b3);
        }
        (arrivals, sim.now(), sim.metrics().events_dispatched, h)
    }

    #[test]
    fn zero_choice_hook_reproduces_unhooked_run_bit_for_bit() {
        let (mut plain, collector) = build_fan(4);
        let plain_out = fan_outcome(&mut plain, collector);
        let (mut hooked, collector) = build_fan(4);
        let state = std::rc::Rc::new(std::cell::RefCell::new((0u32, 0u32)));
        let s = state.clone();
        hooked.set_choice_hook(Box::new(move |_, choices| {
            let mut st = s.borrow_mut();
            st.0 += 1;
            if choices.len() == 1 {
                st.1 += 1;
            }
            // Alternatives arrive in ascending seq order.
            assert!(choices.windows(2).all(|w| w[0].seq < w[1].seq));
            0
        }));
        let hooked_out = fan_outcome(&mut hooked, collector);
        assert_eq!(plain_out, hooked_out, "always-0 hook must be the identity");
        let (calls, forced) = *state.borrow();
        // The hook sees every dispatch (forced single-option ones too).
        assert_eq!(calls as u64, plain_out.2);
        assert!(forced > 0, "expected some forced dispatches");
        assert!(calls > forced, "expected some real choice points");
    }

    /// Replays a choice vector: positions beyond the vector take index 0.
    fn run_fan_with_vector(vector: &[usize], rounds: u32) -> (Vec<u32>, Time, u64, u64) {
        let (mut sim, collector) = build_fan(rounds);
        let v = vector.to_vec();
        let mut pos = 0usize;
        sim.set_choice_hook(Box::new(move |_, choices| {
            if choices.len() == 1 {
                return 0;
            }
            let idx = v.get(pos).copied().unwrap_or(0);
            pos += 1;
            idx
        }));
        fan_outcome(&mut sim, collector)
    }

    #[test]
    fn choice_vector_replay_is_bit_deterministic() {
        for vector in [&[][..], &[1][..], &[1, 1][..], &[0, 1, 1][..]] {
            let a = run_fan_with_vector(vector, 4);
            let b = run_fan_with_vector(vector, 4);
            assert_eq!(a, b, "replay of {vector:?} diverged");
        }
    }

    #[test]
    fn choice_hook_reorders_same_tick_events() {
        // Choice points 0 and 1 order the three Start events; point 2 is
        // the collector's first same-tick ping pair. Index 0 there = seq
        // order = fanner 0's ping first; index 1 flips the arrival order.
        let zero = run_fan_with_vector(&[], 4);
        let one = run_fan_with_vector(&[0, 0, 1], 4);
        assert_eq!(zero.0[..2], [0, 1]);
        assert_eq!(one.0[..2], [1, 0]);
        // Same multiset of work, different interleaving.
        assert_eq!(zero.2, one.2, "same events dispatched");
        assert_ne!(zero.3, one.3, "trace must differ");
        // Out-of-range choice clamps to the last alternative.
        let clamped = run_fan_with_vector(&[0, 0, 99], 4);
        assert_eq!(clamped.0, one.0);
    }

    #[test]
    fn trace_records_crash_and_dropped_delivery() {
        let run = || {
            let (mut sim, ponger, _) = build(4);
            sim.enable_trace(10_000);
            sim.crash_at(ponger, Time::from_delays(3));
            sim.run_to_quiescence(Time::from_delays(100));
            sim.trace().dump()
        };
        let a = run();
        assert_eq!(a, run(), "trace is part of the determinism contract");
        assert!(a.contains("CRASH"));
        assert!(a.contains("dropped msg (crashed)"));
    }
}
