//! Virtual time.
//!
//! The paper measures algorithm performance in *network delays*: a message
//! takes one delay, a memory operation takes two (its hardware implementation
//! is a round trip). We represent virtual time as integer *ticks* with
//! [`TICKS_PER_DELAY`] ticks per network delay, so that sub-delay timer
//! granularity (e.g. polling loops) is expressible while delay accounting
//! stays exact.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of ticks in one network delay (the paper's unit of latency).
pub const TICKS_PER_DELAY: u64 = 1_000;

/// An instant of virtual time, measured in ticks since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The origin of virtual time.
    pub const ZERO: Time = Time(0);

    /// Constructs a time from a whole number of network delays.
    ///
    /// ```
    /// use simnet::{Time, TICKS_PER_DELAY};
    /// assert_eq!(Time::from_delays(2).0, 2 * TICKS_PER_DELAY);
    /// ```
    pub fn from_delays(delays: u64) -> Time {
        Time(delays * TICKS_PER_DELAY)
    }

    /// This instant expressed in (possibly fractional) network delays.
    pub fn as_delays(self) -> f64 {
        self.0 as f64 / TICKS_PER_DELAY as f64
    }

    /// Saturating difference between two instants.
    pub fn since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}d", self.as_delays())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_delays())
    }
}

/// A span of virtual time, in ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Duration {
    /// A zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// One network delay.
    pub const DELAY: Duration = Duration(TICKS_PER_DELAY);

    /// Constructs a duration from a whole number of network delays.
    pub fn from_delays(delays: u64) -> Duration {
        Duration(delays * TICKS_PER_DELAY)
    }

    /// Constructs a duration from a fractional number of network delays.
    ///
    /// # Panics
    ///
    /// Panics if `delays` is negative or not finite.
    pub fn from_delays_f64(delays: f64) -> Duration {
        assert!(
            delays.is_finite() && delays >= 0.0,
            "invalid delay: {delays}"
        );
        Duration((delays * TICKS_PER_DELAY as f64).round() as u64)
    }

    /// This span expressed in (possibly fractional) network delays.
    pub fn as_delays(self) -> f64 {
        self.0 as f64 / TICKS_PER_DELAY as f64
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}d", self.as_delays())
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0.checked_sub(rhs.0).expect("time went backwards"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_round_trip() {
        assert_eq!(Time::from_delays(3).as_delays(), 3.0);
        assert_eq!(Duration::from_delays(5).as_delays(), 5.0);
        assert_eq!(Duration::from_delays_f64(0.5).0, TICKS_PER_DELAY / 2);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_delays(2) + Duration::from_delays(3);
        assert_eq!(t, Time::from_delays(5));
        assert_eq!(t - Time::from_delays(2), Duration::from_delays(3));
        assert_eq!(
            Time::from_delays(1).since(Time::from_delays(4)),
            Duration::ZERO
        );
    }

    #[test]
    #[should_panic]
    fn negative_delay_panics() {
        let _ = Duration::from_delays_f64(-1.0);
    }
}
