//! Optional event tracing for debugging simulations.

use std::borrow::Cow;
use std::fmt;

use crate::ids::ActorId;
use crate::time::Time;

/// One recorded trace line.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// When the entry was recorded.
    pub at: Time,
    /// Which actor was executing (or being delivered to).
    pub actor: ActorId,
    /// Free-form text. `Cow` so the kernel's fixed per-event-kind lines
    /// cost no allocation.
    pub text: Cow<'static, str>,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}] {:<4} {}",
            self.at.to_string(),
            self.actor.to_string(),
            self.text
        )
    }
}

/// A bounded in-memory trace. Disabled by default; enabling it records every
/// dispatched event plus any [`Context::note`] calls made by actors.
///
/// [`Context::note`]: crate::Context::note
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    cap: usize,
    entries: Vec<TraceEntry>,
    dropped: u64,
}

impl Trace {
    /// Creates a disabled trace.
    pub fn new() -> Trace {
        Trace {
            enabled: false,
            cap: 100_000,
            entries: Vec::new(),
            dropped: 0,
        }
    }

    /// Enables recording, keeping at most `cap` entries (older entries beyond
    /// the cap are counted as dropped rather than stored).
    pub fn enable(&mut self, cap: usize) {
        self.enabled = true;
        self.cap = cap;
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an entry if enabled. Accepts both `&'static str` (stored
    /// without allocating) and `String`.
    pub fn push(&mut self, at: Time, actor: ActorId, text: impl Into<Cow<'static, str>>) {
        if !self.enabled {
            return;
        }
        if self.entries.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.entries.push(TraceEntry {
            at,
            actor,
            text: text.into(),
        });
    }

    /// Records a lazily-built entry: `f` runs only when the trace is
    /// enabled and under its cap, so disabled runs pay nothing.
    pub fn push_with(&mut self, at: Time, actor: ActorId, f: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        if self.entries.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.entries.push(TraceEntry {
            at,
            actor,
            text: Cow::Owned(f()),
        });
    }

    /// The recorded entries, in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// How many entries were discarded after the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the whole trace, one entry per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        if self.dropped > 0 {
            out.push_str(&format!("... {} entries dropped\n", self.dropped));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::new();
        t.push(Time::ZERO, ActorId(0), "x");
        t.push_with(Time::ZERO, ActorId(0), || {
            panic!("must not run when disabled")
        });
        assert!(t.entries().is_empty());
    }

    #[test]
    fn cap_is_respected() {
        let mut t = Trace::new();
        t.enable(2);
        for i in 0..5 {
            t.push(Time::from_delays(i), ActorId(0), format!("e{i}"));
        }
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert!(t.dump().contains("3 entries dropped"));
    }

    #[test]
    fn dump_formats_lines() {
        let mut t = Trace::new();
        t.enable(10);
        t.push(Time::from_delays(1), ActorId(2), "hello");
        t.push_with(Time::from_delays(2), ActorId(2), || "lazy".to_string());
        let dump = t.dump();
        assert!(dump.contains("hello"));
        assert!(dump.contains("lazy"));
        assert!(dump.contains("a2"));
    }
}
