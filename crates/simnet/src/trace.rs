//! Optional event tracing for debugging simulations.

use std::borrow::Cow;
use std::fmt;

use crate::ids::ActorId;
use crate::time::Time;

/// One recorded trace line.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// When the entry was recorded.
    pub at: Time,
    /// Which actor was executing (or being delivered to).
    pub actor: ActorId,
    /// Free-form text. `Cow` so the kernel's fixed per-event-kind lines
    /// cost no allocation.
    pub text: Cow<'static, str>,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}] {:<4} {}",
            self.at.to_string(),
            self.actor.to_string(),
            self.text
        )
    }
}

/// A bounded in-memory trace. Disabled by default; enabling it records every
/// dispatched event plus any [`Context::note`] calls made by actors.
///
/// The buffer is a ring: once `cap` entries are held, each new entry
/// overwrites the *oldest* one (which is counted as dropped), so what
/// survives is always the most recent window — the part a post-mortem
/// actually needs.
///
/// [`Context::note`]: crate::Context::note
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    cap: usize,
    /// Ring storage: grows up to `cap`, then wraps.
    entries: Vec<TraceEntry>,
    /// Next write position once the ring is full (the oldest entry).
    head: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a disabled trace.
    pub fn new() -> Trace {
        Trace {
            enabled: false,
            cap: 100_000,
            entries: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// Enables recording, keeping at most `cap` entries (older entries beyond
    /// the cap are counted as dropped rather than stored).
    pub fn enable(&mut self, cap: usize) {
        self.enabled = true;
        self.cap = cap.max(1);
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn insert(&mut self, entry: TraceEntry) {
        if self.entries.len() < self.cap {
            self.entries.push(entry);
        } else {
            // Full: overwrite the oldest entry and advance the ring head.
            self.entries[self.head] = entry;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Records an entry if enabled. Accepts both `&'static str` (stored
    /// without allocating) and `String`.
    pub fn push(&mut self, at: Time, actor: ActorId, text: impl Into<Cow<'static, str>>) {
        if !self.enabled {
            return;
        }
        self.insert(TraceEntry {
            at,
            actor,
            text: text.into(),
        });
    }

    /// Records a lazily-built entry: `f` runs only when the trace is
    /// enabled, so disabled runs pay nothing.
    pub fn push_with(&mut self, at: Time, actor: ActorId, f: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        self.insert(TraceEntry {
            at,
            actor,
            text: Cow::Owned(f()),
        });
    }

    /// The recorded entries, oldest first (at most the configured cap,
    /// and always the most recent ones).
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        let split = if self.entries.len() == self.cap {
            self.head
        } else {
            0
        };
        self.entries[split..]
            .iter()
            .chain(self.entries[..split].iter())
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many entries were overwritten after the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the whole trace, one entry per line, oldest first. A
    /// leading marker reports how many older entries were overwritten.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("... {} entries dropped\n", self.dropped));
        }
        for e in self.entries() {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::new();
        t.push(Time::ZERO, ActorId(0), "x");
        t.push_with(Time::ZERO, ActorId(0), || {
            panic!("must not run when disabled")
        });
        assert!(t.is_empty());
        assert_eq!(t.entries().count(), 0);
    }

    #[test]
    fn cap_is_respected() {
        let mut t = Trace::new();
        t.enable(2);
        for i in 0..5 {
            t.push(Time::from_delays(i), ActorId(0), format!("e{i}"));
        }
        // Ring semantics: the *most recent* `cap` entries survive, the
        // overwritten older ones are counted as dropped.
        assert_eq!(t.len(), 2);
        let texts: Vec<&str> = t.entries().map(|e| e.text.as_ref()).collect();
        assert_eq!(texts, vec!["e3", "e4"]);
        assert_eq!(t.dropped(), 3);
        assert!(t.dump().contains("3 entries dropped"));
    }

    #[test]
    fn ring_keeps_order_across_multiple_wraps() {
        let mut t = Trace::new();
        t.enable(3);
        for i in 0..10 {
            t.push(Time::from_delays(i), ActorId(0), format!("e{i}"));
        }
        let texts: Vec<&str> = t.entries().map(|e| e.text.as_ref()).collect();
        assert_eq!(texts, vec!["e7", "e8", "e9"]);
        assert_eq!(t.dropped(), 7);
        // Dump renders oldest-to-newest with the drop marker up front.
        let dump = t.dump();
        let e7 = dump.find("e7").unwrap();
        let e9 = dump.find("e9").unwrap();
        assert!(dump.starts_with("... 7 entries dropped"));
        assert!(e7 < e9);
    }

    #[test]
    fn dump_formats_lines() {
        let mut t = Trace::new();
        t.enable(10);
        t.push(Time::from_delays(1), ActorId(2), "hello");
        t.push_with(Time::from_delays(2), ActorId(2), || "lazy".to_string());
        let dump = t.dump();
        assert!(dump.contains("hello"));
        assert!(dump.contains("lazy"));
        assert!(dump.contains("a2"));
    }
}
