//! Kernel-level properties: determinism, causality (time never runs
//! backwards), delivery guarantees (integrity, no-loss), and crash
//! semantics — the model properties every protocol above relies on.

use proptest::prelude::*;
use simnet::{Actor, ActorId, Context, DelayModel, Duration, EventKind, Simulation, Time};

/// Gossiping actor: relays each received token to a pseudo-random peer a
/// bounded number of times, recording receipt times.
struct Gossip {
    peers: Vec<ActorId>,
    received: Vec<(Time, u64)>,
    forwards_left: u32,
}

impl Actor<u64> for Gossip {
    fn on_event(&mut self, ctx: &mut Context<'_, u64>, ev: EventKind<u64>) {
        match ev {
            EventKind::Start if ctx.me() == ActorId(0) => {
                ctx.send(self.peers[1 % self.peers.len()], 1);
            }
            EventKind::Msg { msg, .. } => {
                self.received.push((ctx.now(), msg));
                if self.forwards_left > 0 {
                    self.forwards_left -= 1;
                    use rand::Rng;
                    let n = self.peers.len();
                    let to = self.peers[ctx.rng().gen_range(0..n)];
                    ctx.send(to, msg + 1);
                }
            }
            _ => {}
        }
    }
}

fn run_gossip(seed: u64, n: usize, jitter: u64) -> (Vec<Vec<(Time, u64)>>, u64, u64) {
    let mut sim: Simulation<u64> = Simulation::new(seed);
    sim.set_default_delay(DelayModel::Uniform {
        lo: Duration::from_delays(1),
        hi: Duration::from_delays(1 + jitter),
    });
    let peers: Vec<ActorId> = (0..n as u32).map(ActorId).collect();
    for _ in 0..n {
        sim.add(Gossip {
            peers: peers.clone(),
            received: Vec::new(),
            forwards_left: 30,
        });
    }
    sim.run_to_quiescence(Time::from_delays(100_000));
    let histories = peers
        .iter()
        .map(|&p| sim.actor_as::<Gossip>(p).unwrap().received.clone())
        .collect();
    (
        histories,
        sim.metrics().messages_sent,
        sim.metrics().messages_delivered,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Identical seeds produce bit-identical histories.
    #[test]
    fn determinism(seed in 0u64..10_000, n in 2usize..6, jitter in 0u64..5) {
        let a = run_gossip(seed, n, jitter);
        let b = run_gossip(seed, n, jitter);
        prop_assert_eq!(a, b);
    }

    /// Receipt times are non-decreasing per actor (causality) and total
    /// messages received equals messages sent (integrity + no-loss, no
    /// crashes).
    #[test]
    fn causality_and_conservation(seed in 0u64..10_000, n in 2usize..6) {
        let (histories, sent, delivered) = run_gossip(seed, n, 3);
        for h in &histories {
            for w in h.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "time ran backwards: {w:?}");
            }
        }
        let received: u64 = histories.iter().map(|h| h.len() as u64).sum();
        // No loss, no duplication: every sent message is delivered exactly
        // once and lands in exactly one history.
        prop_assert_eq!(received, delivered);
        prop_assert_eq!(sent, delivered);
    }

    /// Crashing an actor at time t suppresses exactly its deliveries
    /// after t and nothing else.
    #[test]
    fn crash_cuts_delivery(seed in 0u64..10_000, crash_at in 0u64..20) {
        let n = 4usize;
        let run = |crash: Option<u64>| {
            let mut sim: Simulation<u64> = Simulation::new(seed);
            let peers: Vec<ActorId> = (0..n as u32).map(ActorId).collect();
            for _ in 0..n {
                sim.add(Gossip { peers: peers.clone(), received: Vec::new(), forwards_left: 20 });
            }
            if let Some(t) = crash {
                sim.crash_at(ActorId(1), Time::from_delays(t));
            }
            sim.run_to_quiescence(Time::from_delays(100_000));
            sim.actor_as::<Gossip>(ActorId(1)).unwrap().received.clone()
        };
        let with_crash = run(Some(crash_at));
        for (t, _) in &with_crash {
            prop_assert!(*t <= Time::from_delays(crash_at));
        }
        // Prefix property: the crashed run's history is a prefix of the
        // uncrashed run's (the schedule is identical up to the crash).
        let without = run(None);
        prop_assert!(without.starts_with(&with_crash));
    }
}
