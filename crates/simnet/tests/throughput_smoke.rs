//! Kernel throughput smoke test: the dispatch loop must sustain a floor
//! of events per wall-clock second. `#[ignore]`d by default — wall-clock
//! assertions don't belong in CI's default lane (run with
//! `cargo test -p simnet --release -- --ignored`).

use std::time::Instant;

use simnet::{Actor, ActorId, Context, EventKind, Simulation, Time};

struct Pinger {
    peer: ActorId,
    remaining: u64,
}

impl Actor<u64> for Pinger {
    fn on_event(&mut self, ctx: &mut Context<'_, u64>, ev: EventKind<u64>) {
        match ev {
            EventKind::Start if ctx.me() == ActorId(0) => {
                ctx.send(self.peer, self.remaining);
            }
            EventKind::Msg { from, msg } if msg > 0 => {
                ctx.send(from, msg - 1);
            }
            _ => {}
        }
    }
}

/// Dispatches `events` ping-pong messages and returns the wall seconds.
fn pingpong_secs(events: u64) -> f64 {
    let mut sim: Simulation<u64> = Simulation::new(1);
    let a = ActorId(0);
    let b = ActorId(1);
    sim.add(Pinger {
        peer: b,
        remaining: events,
    });
    sim.add(Pinger {
        peer: a,
        remaining: events,
    });
    let start = Instant::now();
    sim.run_to_quiescence(Time(u64::MAX));
    let secs = start.elapsed().as_secs_f64();
    assert!(
        sim.metrics().events_dispatched > events,
        "workload did not run"
    );
    secs
}

/// ≥ 2M dispatched events within a 10-second wall budget (release builds
/// do this in well under a second; the slack absorbs debug builds and
/// loaded CI machines).
#[test]
#[ignore = "wall-clock sensitive; run explicitly"]
fn kernel_sustains_event_rate() {
    const EVENTS: u64 = 2_000_000;
    const BUDGET_SECS: f64 = 10.0;
    let secs = pingpong_secs(EVENTS);
    assert!(
        secs < BUDGET_SECS,
        "dispatched {EVENTS} events in {secs:.2}s (budget {BUDGET_SECS}s)"
    );
}
