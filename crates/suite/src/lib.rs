//! Workspace facade: re-exports the crates of the reproduction so the
//! root-level integration tests and examples have a single anchor package.
//!
//! The actual code lives in the member crates:
//!
//! * [`simnet`] — deterministic discrete-event simulation kernel
//! * [`rdma_sim`] — RDMA-style memories: regions, permissions, wire protocol
//! * [`sigsim`] — simulated signatures (PKI stand-in)
//! * [`swmr`] — replicated SWMR regular registers over fail-prone memories
//! * [`agreement`] — the paper's protocols and the experiment harness

pub use agreement;
pub use rdma_sim;
pub use sigsim;
pub use simnet;
pub use swmr;
