//! The replication engine: logical operations on registers replicated
//! across `m` fail-prone memories.
//!
//! Implements the construction the paper cites in §4.1 (from Afek et al.,
//! Attiya–Bar-Noy–Dolev, and Jayanti et al.): *"To implement an SWMR
//! register, a process writes or reads all memories, and waits for a
//! majority to respond. When reading, if p sees exactly one distinct non-⊥
//! value v across the memories, it returns v; otherwise, it returns ⊥."*
//!
//! With `m ≥ 2·f_M + 1` memories of which at most `f_M` crash, every
//! operation completes, and the resulting logical register is a **regular**
//! SWMR register: a read concurrent with a write may return either the old
//! value (⊥, since our protocols never overwrite) or the new one.
//!
//! The engine is a sub-state-machine: protocols start logical operations,
//! feed it every memory completion, and receive [`RepEvent`]s when logical
//! operations finish.

use std::collections::BTreeMap;
use std::fmt;

use rdma_sim::{
    Completion, MemEmbed, MemResponse, MemoryClient, OpId, Permission, RegId, RegionId,
};
use simnet::{ActorId, Context};

use crate::quorum::{QuorumStatus, QuorumTracker};

/// Identifies a logical (replicated) operation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RepId(pub u64);

impl fmt::Debug for RepId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rep{}", self.0)
    }
}

/// Outcome of a logical operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepResult<V> {
    /// The write reached a majority of memories.
    WriteOk,
    /// A majority of acknowledgements is no longer possible (permission
    /// naks). This is how a deposed Cheap Quorum leader learns its write
    /// permission was revoked.
    WriteFailed,
    /// Read completed; `None` is ⊥ (no value, or no unique value).
    ReadOk(Option<V>),
    /// A majority of read responses is no longer possible.
    ReadFailed,
    /// Range read completed: per-register values that were unique across
    /// the majority (registers with conflicting replicas are omitted, i.e.
    /// read as ⊥).
    RangeOk(BTreeMap<RegId, V>),
    /// A majority of range-read responses is no longer possible.
    RangeFailed,
    /// The permission change was applied by a majority of memories.
    PermOk,
    /// The permission change was rejected by a majority-blocking set.
    PermFailed,
}

/// A finished logical operation.
#[derive(Clone, Debug)]
pub struct RepEvent<V> {
    /// The id returned when the operation was started.
    pub id: RepId,
    /// The outcome.
    pub result: RepResult<V>,
}

enum Pending<V> {
    Vote(QuorumTracker, VoteKind),
    Read {
        tracker: QuorumTracker,
        values: Vec<Option<V>>,
    },
    Range {
        tracker: QuorumTracker,
        snapshots: Vec<Vec<(RegId, V)>>,
    },
}

#[derive(Clone, Copy)]
enum VoteKind {
    Write,
    Perm,
}

/// How many finished-operation buffers the engine keeps for reuse. In
/// steady state a protocol has a handful of logical operations in flight
/// per engine; the cap only bounds pathological bursts.
const SCRATCH_POOL_CAP: usize = 16;

/// Replicates register operations across a fixed set of memories.
pub struct RepEngine<V, M> {
    memories: Vec<ActorId>,
    next: u64,
    child_to_parent: BTreeMap<OpId, RepId>,
    pending: BTreeMap<RepId, Pending<V>>,
    /// Recycled read-value buffers: replication allocates nothing per slot
    /// once warm.
    spare_values: Vec<Vec<Option<V>>>,
    /// Recycled range-snapshot buffers.
    spare_snapshots: Vec<Vec<Vec<(RegId, V)>>>,
    _msg: std::marker::PhantomData<M>,
}

impl<V, M> fmt::Debug for RepEngine<V, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RepEngine")
            .field("memories", &self.memories)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl<V, M> RepEngine<V, M>
where
    V: Clone + Eq + fmt::Debug + 'static,
    M: MemEmbed<V>,
{
    /// An engine replicating over `memories`. For fault tolerance `f_M`,
    /// callers must supply `m ≥ 2·f_M + 1` memories.
    ///
    /// # Panics
    ///
    /// Panics if `memories` is empty.
    pub fn new(memories: Vec<ActorId>) -> RepEngine<V, M> {
        assert!(!memories.is_empty(), "need at least one memory");
        RepEngine {
            memories,
            next: 0,
            child_to_parent: BTreeMap::new(),
            pending: BTreeMap::new(),
            spare_values: Vec::new(),
            spare_snapshots: Vec::new(),
            _msg: std::marker::PhantomData,
        }
    }

    /// The replica set.
    pub fn memories(&self) -> &[ActorId] {
        &self.memories
    }

    /// Majority size of the replica set.
    pub fn majority(&self) -> usize {
        self.memories.len() / 2 + 1
    }

    fn fresh(&mut self) -> RepId {
        self.next += 1;
        RepId(self.next)
    }

    /// Starts a logical write of `value` to `reg` (through `region`).
    pub fn write(
        &mut self,
        ctx: &mut Context<'_, M>,
        client: &mut MemoryClient<V, M>,
        region: RegionId,
        reg: RegId,
        value: V,
    ) -> RepId {
        let id = self.fresh();
        let tracker = QuorumTracker::majority(self.memories.len());
        self.pending
            .insert(id, Pending::Vote(tracker, VoteKind::Write));
        for i in 0..self.memories.len() {
            let mem = self.memories[i];
            let op = client.write(ctx, mem, region, reg, value.clone());
            self.child_to_parent.insert(op, id);
        }
        id
    }

    /// Starts a logical read of `reg` (through `region`).
    pub fn read(
        &mut self,
        ctx: &mut Context<'_, M>,
        client: &mut MemoryClient<V, M>,
        region: RegionId,
        reg: RegId,
    ) -> RepId {
        let id = self.fresh();
        let tracker = QuorumTracker::majority(self.memories.len());
        let values = self.spare_values.pop().unwrap_or_default();
        self.pending.insert(id, Pending::Read { tracker, values });
        for i in 0..self.memories.len() {
            let mem = self.memories[i];
            let op = client.read(ctx, mem, region, reg);
            self.child_to_parent.insert(op, id);
        }
        id
    }

    /// Starts a logical range read of `region`, optionally filtered to a
    /// sub-pattern of registers.
    pub fn read_range(
        &mut self,
        ctx: &mut Context<'_, M>,
        client: &mut MemoryClient<V, M>,
        region: RegionId,
        within: Option<rdma_sim::RegionSpec>,
    ) -> RepId {
        let id = self.fresh();
        let tracker = QuorumTracker::majority(self.memories.len());
        let snapshots = self.spare_snapshots.pop().unwrap_or_default();
        self.pending
            .insert(id, Pending::Range { tracker, snapshots });
        for i in 0..self.memories.len() {
            let mem = self.memories[i];
            let op = client.read_range(ctx, mem, region, within);
            self.child_to_parent.insert(op, id);
        }
        id
    }

    /// Starts a logical permission change on `region`.
    pub fn change_perm(
        &mut self,
        ctx: &mut Context<'_, M>,
        client: &mut MemoryClient<V, M>,
        region: RegionId,
        new: Permission,
    ) -> RepId {
        let id = self.fresh();
        let tracker = QuorumTracker::majority(self.memories.len());
        self.pending
            .insert(id, Pending::Vote(tracker, VoteKind::Perm));
        for i in 0..self.memories.len() {
            let mem = self.memories[i];
            let op = client.change_perm(ctx, mem, region, new.clone());
            self.child_to_parent.insert(op, id);
        }
        id
    }

    /// Feeds one memory completion. Returns the logical completion if this
    /// response finished a logical operation.
    pub fn on_completion(&mut self, c: Completion<V>) -> Option<RepEvent<V>> {
        let id = self.child_to_parent.remove(&c.op)?;
        let pending = self.pending.get_mut(&id)?;
        let event = match pending {
            Pending::Vote(tracker, kind) => {
                let ok = c.resp.is_ok();
                let status = if ok {
                    tracker.vote_yes()
                } else {
                    tracker.vote_no()
                };
                let kind = *kind;
                match status {
                    QuorumStatus::Pending => None,
                    QuorumStatus::Reached => Some(match kind {
                        VoteKind::Write => RepResult::WriteOk,
                        VoteKind::Perm => RepResult::PermOk,
                    }),
                    QuorumStatus::Impossible => Some(match kind {
                        VoteKind::Write => RepResult::WriteFailed,
                        VoteKind::Perm => RepResult::PermFailed,
                    }),
                }
            }
            Pending::Read { tracker, values } => match c.resp {
                MemResponse::Value(v) => {
                    values.push(v);
                    match tracker.vote_yes() {
                        QuorumStatus::Reached => {
                            Some(RepResult::ReadOk(unique_value(values.iter().cloned())))
                        }
                        QuorumStatus::Impossible => Some(RepResult::ReadFailed),
                        QuorumStatus::Pending => None,
                    }
                }
                _ => match tracker.vote_no() {
                    QuorumStatus::Impossible => Some(RepResult::ReadFailed),
                    _ => None,
                },
            },
            Pending::Range { tracker, snapshots } => match c.resp {
                MemResponse::Range(rows) => {
                    snapshots.push(rows);
                    match tracker.vote_yes() {
                        QuorumStatus::Reached => Some(RepResult::RangeOk(merge_ranges(snapshots))),
                        QuorumStatus::Impossible => Some(RepResult::RangeFailed),
                        QuorumStatus::Pending => None,
                    }
                }
                _ => match tracker.vote_no() {
                    QuorumStatus::Impossible => Some(RepResult::RangeFailed),
                    _ => None,
                },
            },
        };
        event.map(|result| {
            if let Some(done) = self.pending.remove(&id) {
                self.recycle(done);
            }
            RepEvent { id, result }
        })
    }

    /// Returns a finished operation's buffers to the scratch pools.
    fn recycle(&mut self, done: Pending<V>) {
        match done {
            Pending::Vote(..) => {}
            Pending::Read { mut values, .. } => {
                if self.spare_values.len() < SCRATCH_POOL_CAP {
                    values.clear();
                    self.spare_values.push(values);
                }
            }
            Pending::Range { mut snapshots, .. } => {
                if self.spare_snapshots.len() < SCRATCH_POOL_CAP {
                    // The per-replica row vectors came off the wire and are
                    // dropped; the outer buffer's capacity is what recurs
                    // every slot.
                    snapshots.clear();
                    self.spare_snapshots.push(snapshots);
                }
            }
        }
    }

    /// Number of logical operations still in flight.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

/// The paper's read rule: exactly one distinct non-⊥ value, else ⊥.
fn unique_value<V: Eq>(values: impl Iterator<Item = Option<V>>) -> Option<V> {
    let mut unique: Option<V> = None;
    for v in values.flatten() {
        match &unique {
            None => unique = Some(v),
            Some(u) if *u == v => {}
            Some(_) => return None, // two distinct non-⊥ values
        }
    }
    unique
}

/// Applies the unique-value rule per register across replica snapshots.
/// A register absent from a snapshot counts as ⊥ there (and ⊥ never
/// conflicts); a register with two distinct replica values is dropped.
fn merge_ranges<V: Clone + Eq>(snapshots: &[Vec<(RegId, V)>]) -> BTreeMap<RegId, V> {
    let mut out: BTreeMap<RegId, Option<V>> = BTreeMap::new();
    for snap in snapshots {
        for (reg, v) in snap {
            match out.get_mut(reg) {
                None => {
                    out.insert(*reg, Some(v.clone()));
                }
                Some(slot) => {
                    if let Some(u) = slot {
                        if u != v {
                            *slot = None; // conflicting replicas: reads as ⊥
                        }
                    }
                }
            }
        }
    }
    out.into_iter()
        .filter_map(|(k, v)| v.map(|v| (k, v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_value_rule() {
        assert_eq!(unique_value::<u8>([None, None].into_iter()), None);
        assert_eq!(unique_value([Some(1), None, Some(1)].into_iter()), Some(1));
        assert_eq!(unique_value([Some(1), Some(2)].into_iter()), None);
        assert_eq!(unique_value([None, Some(3)].into_iter()), Some(3));
    }

    #[test]
    fn merge_ranges_unique_per_register() {
        let r1 = RegId::one(1, 1);
        let r2 = RegId::one(1, 2);
        let snaps = vec![
            vec![(r1, 10), (r2, 20)],
            vec![(r1, 10)],
            vec![(r1, 11), (r2, 20)], // r1 conflicts here
        ];
        let merged = merge_ranges(&snaps);
        assert_eq!(merged.get(&r1), None);
        assert_eq!(merged.get(&r2), Some(&20));
    }
}
