//! # swmr — fault-tolerant SWMR regular registers over fail-prone memories
//!
//! The paper's algorithms are developed against reliable Single-Writer
//! Multi-Reader *regular* registers, then lifted to the fail-prone
//! message-and-memory model by replicating every register across
//! `m ≥ 2·f_M + 1` memories (§4.1, "Non-equivocation in our model"):
//!
//! > "To implement an SWMR register, a process writes or reads all
//! > memories, and waits for a majority to respond. When reading, if p sees
//! > exactly one distinct non-⊥ value v across the memories, it returns v;
//! > otherwise, it returns ⊥."
//!
//! [`RepEngine`] packages that construction as a sub-state-machine usable
//! from any actor: start logical writes/reads/permission changes, feed it
//! every memory completion, consume [`RepEvent`]s. [`QuorumTracker`] is the
//! underlying vote counter, also used directly by the consensus protocols.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod quorum;

pub use engine::{RepEngine, RepEvent, RepId, RepResult};
pub use quorum::{QuorumStatus, QuorumTracker};

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::{
        LegalChange, MemEmbed, MemWire, MemoryActor, MemoryClient, PermSet, Permission, RegId,
        RegionId, RegionSpec,
    };
    use simnet::{Actor, ActorId, Context, EventKind, Simulation, Time};

    #[derive(Clone, Debug, PartialEq, Eq)]
    enum TMsg {
        Mem(MemWire<u64>),
    }
    impl MemEmbed<u64> for TMsg {
        fn from_wire(wire: MemWire<u64>) -> Self {
            TMsg::Mem(wire)
        }
        fn into_wire(self) -> Result<MemWire<u64>, Self> {
            let TMsg::Mem(w) = self;
            Ok(w)
        }
    }

    const REGION: RegionId = RegionId(0);
    const REG: RegId = RegId {
        space: 1,
        a: 0,
        b: 0,
        c: 0,
    };

    /// Writes 7 to the replicated register, then reads it back.
    struct WriteThenRead {
        client: MemoryClient<u64, TMsg>,
        engine: RepEngine<u64, TMsg>,
        write_id: Option<RepId>,
        read_id: Option<RepId>,
        write_done_at: Option<Time>,
        read_result: Option<Option<u64>>,
        read_done_at: Option<Time>,
    }
    impl WriteThenRead {
        fn new(memories: Vec<ActorId>) -> Self {
            WriteThenRead {
                client: MemoryClient::new(),
                engine: RepEngine::new(memories),
                write_id: None,
                read_id: None,
                write_done_at: None,
                read_result: None,
                read_done_at: None,
            }
        }
    }
    impl Actor<TMsg> for WriteThenRead {
        fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
            match ev {
                EventKind::Start => {
                    self.write_id = Some(self.engine.write(ctx, &mut self.client, REGION, REG, 7));
                }
                EventKind::Msg {
                    from,
                    msg: TMsg::Mem(wire),
                } => {
                    let Some(c) = self.client.on_wire(ctx, from, wire) else {
                        return;
                    };
                    let Some(done) = self.engine.on_completion(c) else {
                        return;
                    };
                    if Some(done.id) == self.write_id {
                        assert_eq!(done.result, RepResult::WriteOk);
                        self.write_done_at = Some(ctx.now());
                        self.read_id = Some(self.engine.read(ctx, &mut self.client, REGION, REG));
                    } else if Some(done.id) == self.read_id {
                        let RepResult::ReadOk(v) = done.result else {
                            panic!("read failed")
                        };
                        self.read_result = Some(v);
                        self.read_done_at = Some(ctx.now());
                    }
                }
                _ => {}
            }
        }
    }

    fn memories(sim: &mut Simulation<TMsg>, m: usize, perm: Permission) -> Vec<ActorId> {
        (0..m)
            .map(|_| {
                sim.add(
                    MemoryActor::<u64, TMsg>::new(LegalChange::Static).with_region(
                        REGION,
                        RegionSpec::Space(1),
                        perm.clone(),
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn write_read_round_trip_over_three_memories() {
        let mut sim: Simulation<TMsg> = Simulation::new(11);
        let mems = memories(&mut sim, 3, Permission::open());
        let a = sim.add(WriteThenRead::new(mems));
        sim.run_to_quiescence(Time::from_delays(100));
        let actor = sim.actor_as::<WriteThenRead>(a).unwrap();
        // A replicated write is one parallel round trip: 2 delays.
        assert_eq!(actor.write_done_at, Some(Time::from_delays(2)));
        assert_eq!(actor.read_result, Some(Some(7)));
        assert_eq!(actor.read_done_at, Some(Time::from_delays(4)));
    }

    #[test]
    fn tolerates_minority_memory_crashes() {
        // m = 5, f_M = 2: both ops still complete.
        let mut sim: Simulation<TMsg> = Simulation::new(11);
        let mems = memories(&mut sim, 5, Permission::open());
        sim.crash_at(mems[0], Time::ZERO);
        sim.crash_at(mems[4], Time::ZERO);
        let a = sim.add(WriteThenRead::new(mems));
        sim.run_to_quiescence(Time::from_delays(100));
        let actor = sim.actor_as::<WriteThenRead>(a).unwrap();
        assert_eq!(actor.read_result, Some(Some(7)));
    }

    #[test]
    fn majority_crash_blocks_without_wrong_answers() {
        // m = 3, 2 crashed: the write can never complete, but nothing lies.
        let mut sim: Simulation<TMsg> = Simulation::new(11);
        let mems = memories(&mut sim, 3, Permission::open());
        sim.crash_at(mems[0], Time::ZERO);
        sim.crash_at(mems[1], Time::ZERO);
        let a = sim.add(WriteThenRead::new(mems));
        sim.run_to_quiescence(Time::from_delays(1000));
        let actor = sim.actor_as::<WriteThenRead>(a).unwrap();
        assert_eq!(actor.write_done_at, None);
        assert_eq!(actor.read_result, None);
    }

    #[test]
    fn write_fails_cleanly_without_permission() {
        // Register writable only by a stranger: WriteFailed, not a hang.
        struct WriteOnly {
            client: MemoryClient<u64, TMsg>,
            engine: RepEngine<u64, TMsg>,
            result: Option<RepResult<u64>>,
        }
        impl Actor<TMsg> for WriteOnly {
            fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
                match ev {
                    EventKind::Start => {
                        self.engine.write(ctx, &mut self.client, REGION, REG, 1);
                    }
                    EventKind::Msg {
                        from,
                        msg: TMsg::Mem(wire),
                    } => {
                        if let Some(c) = self.client.on_wire(ctx, from, wire) {
                            if let Some(done) = self.engine.on_completion(c) {
                                self.result = Some(done.result);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut sim: Simulation<TMsg> = Simulation::new(11);
        let stranger_only = Permission {
            read: PermSet::Everybody,
            write: PermSet::Nobody,
            rw: PermSet::only([ActorId(99)]),
        };
        let mems = memories(&mut sim, 3, stranger_only);
        let a = sim.add(WriteOnly {
            client: MemoryClient::new(),
            engine: RepEngine::new(mems),
            result: None,
        });
        sim.run_to_quiescence(Time::from_delays(100));
        let actor = sim.actor_as::<WriteOnly>(a).unwrap();
        assert_eq!(actor.result, Some(RepResult::WriteFailed));
    }

    /// A (Byzantine-style) split write: different values to different
    /// replicas. Readers must get one of the values or ⊥ — never a third.
    struct SplitWriter {
        mems: Vec<ActorId>,
        client: MemoryClient<u64, TMsg>,
    }
    impl Actor<TMsg> for SplitWriter {
        fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
            match ev {
                EventKind::Start => {
                    for (i, mem) in self.mems.clone().into_iter().enumerate() {
                        let v = if i == 0 { 1 } else { 2 };
                        self.client.write(ctx, mem, REGION, REG, v);
                    }
                }
                EventKind::Msg {
                    from,
                    msg: TMsg::Mem(wire),
                } => {
                    let _ = self.client.on_wire(ctx, from, wire);
                }
                _ => {}
            }
        }
    }

    struct LateReader {
        client: MemoryClient<u64, TMsg>,
        engine: RepEngine<u64, TMsg>,
        result: Option<Option<u64>>,
    }
    impl Actor<TMsg> for LateReader {
        fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
            match ev {
                EventKind::Start => {
                    // Delay the read until the split writes have landed.
                    ctx.set_timer(simnet::Duration::from_delays(5), 0);
                }
                EventKind::Timer { .. } => {
                    self.engine.read(ctx, &mut self.client, REGION, REG);
                }
                EventKind::Msg {
                    from,
                    msg: TMsg::Mem(wire),
                } => {
                    if let Some(c) = self.client.on_wire(ctx, from, wire) {
                        if let Some(done) = self.engine.on_completion(c) {
                            let RepResult::ReadOk(v) = done.result else {
                                panic!()
                            };
                            self.result = Some(v);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn split_replica_write_reads_as_bot_or_one_value() {
        let mut sim: Simulation<TMsg> = Simulation::new(11);
        let mems = memories(&mut sim, 3, Permission::open());
        sim.add(SplitWriter {
            mems: mems.clone(),
            client: MemoryClient::new(),
        });
        let r = sim.add(LateReader {
            client: MemoryClient::new(),
            engine: RepEngine::new(mems),
            result: None,
        });
        sim.run_to_quiescence(Time::from_delays(100));
        let got = sim.actor_as::<LateReader>(r).unwrap().result.unwrap();
        // Replicas disagree (1 at one memory, 2 at two): the majority the
        // reader happens to contact yields either a unique value or ⊥.
        assert!(
            got.is_none() || got == Some(2) || got == Some(1),
            "impossible value {got:?}"
        );
    }
}
