//! Counting votes toward a quorum.

/// Progress of a yes/no vote toward a threshold.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QuorumStatus {
    /// Not yet decided either way.
    Pending,
    /// The threshold of yes votes was reached.
    Reached,
    /// Enough no votes arrived that the threshold can never be reached.
    Impossible,
}

/// Tracks yes/no votes from `total` voters toward `needed` yes votes.
///
/// Voters that never answer (crashed memories, crashed processes) simply
/// never vote; the tracker reports [`QuorumStatus::Impossible`] only when the
/// *no* votes alone preclude success, i.e. `no > total - needed`.
#[derive(Clone, Debug)]
pub struct QuorumTracker {
    needed: usize,
    total: usize,
    yes: usize,
    no: usize,
}

impl QuorumTracker {
    /// A tracker requiring `needed` of `total` yes votes.
    ///
    /// # Panics
    ///
    /// Panics if `needed > total` (such a quorum could never be reached).
    pub fn new(needed: usize, total: usize) -> QuorumTracker {
        assert!(
            needed <= total,
            "quorum {needed} impossible with {total} voters"
        );
        QuorumTracker {
            needed,
            total,
            yes: 0,
            no: 0,
        }
    }

    /// A majority-of-`total` tracker.
    pub fn majority(total: usize) -> QuorumTracker {
        QuorumTracker::new(total / 2 + 1, total)
    }

    /// Registers a yes vote and returns the new status.
    pub fn vote_yes(&mut self) -> QuorumStatus {
        self.yes += 1;
        debug_assert!(self.yes + self.no <= self.total, "more votes than voters");
        self.status()
    }

    /// Registers a no vote and returns the new status.
    pub fn vote_no(&mut self) -> QuorumStatus {
        self.no += 1;
        debug_assert!(self.yes + self.no <= self.total, "more votes than voters");
        self.status()
    }

    /// Current status.
    pub fn status(&self) -> QuorumStatus {
        if self.yes >= self.needed {
            QuorumStatus::Reached
        } else if self.no > self.total - self.needed {
            QuorumStatus::Impossible
        } else {
            QuorumStatus::Pending
        }
    }

    /// Yes votes so far.
    pub fn yes_count(&self) -> usize {
        self.yes
    }

    /// No votes so far.
    pub fn no_count(&self) -> usize {
        self.no
    }

    /// Total responses so far.
    pub fn responses(&self) -> usize {
        self.yes + self.no
    }

    /// The yes threshold.
    pub fn needed(&self) -> usize {
        self.needed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_sizes() {
        assert_eq!(QuorumTracker::majority(3).needed(), 2);
        assert_eq!(QuorumTracker::majority(4).needed(), 3);
        assert_eq!(QuorumTracker::majority(5).needed(), 3);
        assert_eq!(QuorumTracker::majority(1).needed(), 1);
    }

    #[test]
    fn reaches_on_yes() {
        let mut q = QuorumTracker::majority(3);
        assert_eq!(q.vote_yes(), QuorumStatus::Pending);
        assert_eq!(q.vote_yes(), QuorumStatus::Reached);
    }

    #[test]
    fn impossible_on_too_many_no() {
        let mut q = QuorumTracker::majority(3); // needs 2 of 3
        assert_eq!(q.vote_no(), QuorumStatus::Pending);
        assert_eq!(q.vote_no(), QuorumStatus::Impossible);
    }

    #[test]
    fn silent_voters_keep_it_pending() {
        let mut q = QuorumTracker::new(2, 5);
        assert_eq!(q.vote_yes(), QuorumStatus::Pending);
        assert_eq!(q.vote_no(), QuorumStatus::Pending);
        assert_eq!(q.status(), QuorumStatus::Pending);
    }

    #[test]
    #[should_panic(expected = "impossible")]
    fn invalid_threshold_panics() {
        let _ = QuorumTracker::new(4, 3);
    }
}
