//! Property tests of the replicated-register layer: regularity of the
//! logical register under crashes and jitter, and quorum-tracker laws.

use proptest::prelude::*;
use rdma_sim::{
    LegalChange, MemEmbed, MemWire, MemoryActor, MemoryClient, Permission, RegId, RegionId,
    RegionSpec,
};
use simnet::{Actor, ActorId, Context, DelayModel, Duration, EventKind, Simulation, Time};
use swmr::{QuorumStatus, QuorumTracker, RepEngine, RepResult};

#[derive(Clone, Debug, PartialEq, Eq)]
enum TMsg {
    Mem(MemWire<u64>),
}
impl MemEmbed<u64> for TMsg {
    fn from_wire(wire: MemWire<u64>) -> Self {
        TMsg::Mem(wire)
    }
    fn into_wire(self) -> Result<MemWire<u64>, Self> {
        let TMsg::Mem(w) = self;
        Ok(w)
    }
}

const REGION: RegionId = RegionId(0);
const REG: RegId = RegId {
    space: 0,
    a: 0,
    b: 0,
    c: 0,
};

/// Writes a sequence of values (waiting for each WriteOk), then reads.
struct SeqWriter {
    mems: Vec<ActorId>,
    values: Vec<u64>,
    client: MemoryClient<u64, TMsg>,
    engine: Option<RepEngine<u64, TMsg>>,
    idx: usize,
    reading: bool,
    result: Option<Option<u64>>,
}

impl Actor<TMsg> for SeqWriter {
    fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
        match ev {
            EventKind::Start => {
                let mut engine = RepEngine::new(self.mems.clone());
                engine.write(ctx, &mut self.client, REGION, REG, self.values[0]);
                self.engine = Some(engine);
            }
            EventKind::Msg {
                from,
                msg: TMsg::Mem(wire),
            } => {
                let Some(c) = self.client.on_wire(ctx, from, wire) else {
                    return;
                };
                let engine = self.engine.as_mut().expect("started");
                let Some(done) = engine.on_completion(c) else {
                    return;
                };
                match done.result {
                    RepResult::WriteOk => {
                        self.idx += 1;
                        if self.idx < self.values.len() {
                            engine.write(ctx, &mut self.client, REGION, REG, self.values[self.idx]);
                        } else if !self.reading {
                            self.reading = true;
                            engine.read(ctx, &mut self.client, REGION, REG);
                        }
                    }
                    RepResult::ReadOk(v) => self.result = Some(v),
                    other => panic!("unexpected completion {other:?}"),
                }
            }
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sequential writes followed by a read return the LAST completed
    /// write — for any values, any minority crash set, any jitter, any
    /// seed. (This is regularity specialized to non-concurrent ops.)
    #[test]
    fn read_returns_last_completed_write(
        values in proptest::collection::vec(0u64..1000, 1..6),
        seed in 0u64..5_000,
        dead in proptest::collection::btree_set(0usize..5, 0..3),
        jitter in 0u64..4,
    ) {
        let m = 5u32;
        prop_assume!(dead.len() <= 2); // f_M < majority
        let mut sim: Simulation<TMsg> = Simulation::new(seed);
        sim.set_default_delay(DelayModel::Uniform {
            lo: Duration::from_delays(1),
            hi: Duration::from_delays(1 + jitter),
        });
        let mems: Vec<ActorId> = (1..=m).map(ActorId).collect();
        let writer = SeqWriter {
            mems: mems.clone(),
            values: values.clone(),
            client: MemoryClient::new(),
            engine: None,
            idx: 0,
            reading: false,
            result: None,
        };
        let w = sim.add(writer);
        prop_assert_eq!(w, ActorId(0));
        for _ in 0..m {
            sim.add(MemoryActor::<u64, TMsg>::new(LegalChange::Static).with_region(
                REGION,
                RegionSpec::Space(0),
                Permission::exclusive_writer(ActorId(0)),
            ));
        }
        for &d in &dead {
            sim.crash_at(mems[d], Time::ZERO);
        }
        sim.run_to_quiescence(Time::from_delays(50_000));
        let got = sim.actor_as::<SeqWriter>(w).unwrap().result;
        prop_assert_eq!(got, Some(Some(*values.last().unwrap())));
    }

    /// QuorumTracker laws: status is a function of (yes, no) counts;
    /// Reached and Impossible are mutually exclusive; adding yes votes
    /// never moves away from Reached.
    #[test]
    fn quorum_tracker_laws(
        total in 1usize..10,
        votes in proptest::collection::vec(any::<bool>(), 0..10),
    ) {
        let mut t = QuorumTracker::majority(total);
        let needed = t.needed();
        prop_assert_eq!(needed, total / 2 + 1);
        let mut yes = 0;
        let mut no = 0;
        for &v in votes.iter().take(total) {
            let status = if v { yes += 1; t.vote_yes() } else { no += 1; t.vote_no() };
            let expect = if yes >= needed {
                QuorumStatus::Reached
            } else if no > total - needed {
                QuorumStatus::Impossible
            } else {
                QuorumStatus::Pending
            };
            prop_assert_eq!(status, expect);
            prop_assert_eq!(t.yes_count(), yes);
            prop_assert_eq!(t.no_count(), no);
        }
        // Mutual exclusion at the end.
        let reached = t.status() == QuorumStatus::Reached;
        let impossible = t.status() == QuorumStatus::Impossible;
        prop_assert!(!(reached && impossible));
    }
}
