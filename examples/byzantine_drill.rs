//! Byzantine fire drill: what the paper's mechanisms do under live attack.
//!
//! Three scenarios, printed as a narrative:
//!
//! 1. An **equivocating Cheap Quorum leader** split-writes two signed
//!    values across the memory replicas. Unanimity fails, followers panic,
//!    revoke the leader's permission and abort — no two correct processes
//!    ever decide differently.
//! 2. A **silent Byzantine follower** under the full Fast & Robust stack:
//!    the correct leader still 2-decides; the backup confirms its value.
//! 3. A **protocol-violating sender** over trusted channels: its Accept
//!    with no promise quorum is rejected by every history checker — the
//!    Byzantine process is confined to a crash.
//!
//! ```sh
//! cargo run --example byzantine_drill
//! ```

use agreement::adversary::{BadHistoryActor, CqEquivocatingLeader};
use agreement::cheap_quorum::{memory_actor as cq_memory, CheapQuorumActor};
use agreement::harness::{run_fast_robust, Scenario};
use agreement::nebcast;
use agreement::robust_backup::RobustPaxosActor;
use agreement::types::{Msg, Value};
use rdma_sim::{LegalChange, MemoryActor};
use sigsim::SigAuthority;
use simnet::{ActorId, Duration, Simulation, Time};

fn main() {
    drill_equivocating_leader();
    drill_silent_follower();
    drill_bad_history();
}

fn drill_equivocating_leader() {
    println!("== drill 1: equivocating Cheap Quorum leader ==");
    let (n, m) = (3u32, 3u32);
    let mut sim: Simulation<Msg> = Simulation::new(7);
    let procs: Vec<ActorId> = (0..n).map(ActorId).collect();
    let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
    let mut auth = SigAuthority::new(99);
    let leader_signer = auth.register(ActorId(0));
    // The Byzantine leader writes v=111 to one replica, v=222 to the rest.
    sim.add(CqEquivocatingLeader::new(
        ActorId(0),
        mems.clone(),
        1,
        Value(111),
        Value(222),
        leader_signer,
    ));
    for i in 1..n {
        let signer = auth.register(ActorId(i));
        sim.add(CheapQuorumActor::new(
            ActorId(i),
            procs.clone(),
            mems.clone(),
            ActorId(0),
            Value(100 + i as u64),
            signer,
            auth.verifier(),
            Duration::from_delays(1),
            Duration::from_delays(25),
        ));
    }
    for _ in 0..m {
        sim.add(cq_memory(&procs, ActorId(0)));
    }
    sim.run_to_quiescence(Time::from_delays(400));
    let mut decisions = Vec::new();
    for i in 1..n {
        let a = sim.actor_as::<CheapQuorumActor>(ActorId(i)).unwrap();
        println!(
            "  follower {}: decision={:?} abort={:?}",
            i,
            a.decision(),
            a.abort().map(|x| x.value)
        );
        if let Some(d) = a.decision() {
            decisions.push(d);
        }
    }
    assert!(
        decisions.windows(2).all(|w| w[0] == w[1]),
        "correct processes decided differently!"
    );
    println!("  -> no split decision; followers panicked and aborted with evidence\n");
}

fn drill_silent_follower() {
    println!("== drill 2: silent Byzantine follower under Fast & Robust ==");
    let mut scenario = Scenario::common_case(3, 3, 11);
    scenario.byz_silent.push(2);
    scenario.max_delays = 20_000;
    let (report, _) = run_fast_robust(&scenario, 20);
    println!(
        "  correct processes decided: {:?} (agreement={}, first at {:.1} delays)",
        report.decisions.values().collect::<Vec<_>>(),
        report.agreement,
        report.first_decision_delays.unwrap()
    );
    assert!(report.agreement && report.all_decided);
    println!("  -> the leader's fast path still won; the backup confirmed it\n");
}

fn drill_bad_history() {
    println!("== drill 3: protocol-violating sender vs. history checking ==");
    let (n, m) = (3u32, 3u32);
    let mut sim: Simulation<Msg> = Simulation::new(13);
    let procs: Vec<ActorId> = (0..n).map(ActorId).collect();
    let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
    let mut auth = SigAuthority::new(5);
    for i in 0..n {
        let signer = auth.register(ActorId(i));
        if i == 2 {
            // Broadcasts Accept{b=(1,p2)} with an empty history: illegal.
            sim.add(BadHistoryActor::new(
                ActorId(2),
                mems.clone(),
                Value(666),
                signer,
            ));
            continue;
        }
        sim.add(RobustPaxosActor::new(
            ActorId(i),
            procs.clone(),
            mems.clone(),
            Value(100 + i as u64),
            Some(ActorId(0)),
            signer,
            auth.verifier(),
            Duration::from_delays(1),
            Duration::from_delays(80),
        ));
    }
    for _ in 0..m {
        let mut mem = MemoryActor::new(LegalChange::Static);
        nebcast::configure_memory(&mut mem, &procs);
        sim.add(mem);
    }
    sim.run_until(Time::from_delays(2_000), |s| {
        [0u32, 1].iter().all(|&i| {
            s.actor_as::<RobustPaxosActor>(ActorId(i))
                .unwrap()
                .decision()
                .is_some()
        })
    });
    for i in [0u32, 1] {
        let a = sim.actor_as::<RobustPaxosActor>(ActorId(i)).unwrap();
        println!("  correct process {}: decision={:?}", i, a.decision());
        assert_eq!(a.decision(), Some(Value(100)));
    }
    println!("  -> the forged Accept was rejected everywhere; Byzantine == crashed");
    println!("     (its value 666 never appears)");
}
