//! Regenerates the paper's headline trade-off as a table: common-case
//! decision latency (network delays) versus failure resilience, for every
//! protocol in the repository (experiment E2 of DESIGN.md).
//!
//! ```sh
//! cargo run --example delay_table
//! ```

use agreement::aligned::MemoryMode;
use agreement::harness::{
    run_aligned, run_disk_paxos, run_fast_paxos, run_fast_robust, run_mp_paxos, run_protected,
    run_robust_backup, Scenario,
};

fn main() {
    println!("Common-case decision latency vs. resilience (synchronous, failure-free)");
    println!("n = processes, m = memories; latency in network delays\n");
    println!(
        "{:<28} {:>7} {:>12} {:>22} {:>16}",
        "protocol", "delays", "msgs+ops", "process resilience", "failure model"
    );
    println!("{}", "-".repeat(92));

    for n in [3usize, 5, 7] {
        let m = 3;
        let s = Scenario::common_case(n, m, 7);

        let r = run_mp_paxos(&s);
        row(&format!("Paxos (messages) n={n}"), &r, "n >= 2f+1", "crash");

        let r = run_fast_paxos(&s, 1);
        row(
            &format!("Fast Paxos n={n}"),
            &r,
            "n >= 2f+1 (fast: less)",
            "crash",
        );

        let r = run_disk_paxos(&s);
        row(&format!("Disk Paxos n={n},m={m}"), &r, "n >= f+1", "crash");

        let r = run_protected(&s);
        row(
            &format!("Protected Mem Paxos n={n}"),
            &r,
            "n >= f+1",
            "crash",
        );

        let r = run_aligned(&s, MemoryMode::DiskStyle);
        row(
            &format!("Aligned Paxos n={n} (disk)"),
            &r,
            "majority of n+m",
            "crash",
        );

        let r = run_aligned(&s, MemoryMode::Protected);
        row(
            &format!("Aligned Paxos n={n} (perm)"),
            &r,
            "majority of n+m",
            "crash",
        );

        let (r, _) = run_fast_robust(&s, 60);
        row(
            &format!("Fast & Robust n={n}"),
            &r,
            "n >= 2f+1",
            "Byzantine",
        );

        let (r, _) = run_robust_backup(&s);
        row(
            &format!("Robust Backup n={n}"),
            &r,
            "n >= 2f+1",
            "Byzantine",
        );

        println!();
    }

    println!("Paper's claims: Protected Memory Paxos & Fast & Robust decide in 2;");
    println!("Disk Paxos needs >= 4 (Theorem 6.1: no static-permission algorithm");
    println!("can do 2); Robust Backup alone pays >= 6 delays per broadcast hop.");
}

fn row(name: &str, r: &agreement::harness::RunReport, resilience: &str, model: &str) {
    println!(
        "{:<28} {:>7.1} {:>12} {:>22} {:>16}",
        name,
        r.first_decision_delays.unwrap_or(f64::NAN),
        r.messages,
        resilience,
        model
    );
    assert!(r.agreement, "agreement violated in {name}");
}
