//! Quickstart: run the paper's two headline algorithms once each and print
//! what happened.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! * **Fast & Robust** (Byzantine, Theorem 4.9): `n = 2f+1` processes,
//!   `m = 2f_M+1` memories, leader decides after ONE replicated RDMA write.
//! * **Protected Memory Paxos** (crash, Theorem 5.1): same 2-delay decision
//!   with only `n = f+1` processes.

use agreement::harness::{run_fast_robust, run_protected, Scenario};

fn main() {
    println!("== The Impact of RDMA on Agreement — quickstart ==\n");

    // --- Byzantine: Fast & Robust --------------------------------------
    let scenario = Scenario::common_case(3, 3, 42);
    let (report, auth) = run_fast_robust(&scenario, 60);
    println!("Fast & Robust  (n=3 processes, m=3 memories, f_P=1 Byzantine tolerated)");
    println!("  all decided : {}", report.all_decided);
    println!("  agreement   : {}", report.agreement);
    println!(
        "  decision    : {:?}",
        report.decisions.values().next().unwrap()
    );
    println!(
        "  first decision after {:.1} network delays (paper: 2-deciding)",
        report.first_decision_delays.unwrap()
    );
    println!(
        "  signatures  : {} created / {} verified (fast path needs 1)",
        auth.signatures_created(),
        auth.verifications()
    );

    // --- Crash: Protected Memory Paxos ----------------------------------
    let report = run_protected(&scenario);
    println!("\nProtected Memory Paxos  (n=3, m=3, tolerates n-1 process crashes)");
    println!("  all decided : {}", report.all_decided);
    println!("  agreement   : {}", report.agreement);
    println!(
        "  first decision after {:.1} network delays (paper: 2-deciding; Disk Paxos needs 4)",
        report.first_decision_delays.unwrap()
    );
    println!("  memory ops  : {}", report.mem_ops);

    println!("\nSee `cargo run --example delay_table` for the full comparison.");
}
