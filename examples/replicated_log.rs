//! A replicated key-value command log on Protected Memory Paxos — the
//! system the paper's crash-failure section enables (the DARE/APUS/Mu
//! lineage): one committed log entry per single replicated RDMA write.
//!
//! Three replicas order a stream of KV commands; the leader crashes
//! mid-stream; Ω elects a successor which recovers the log from the
//! memories (whole-log slot scan) and keeps committing. Every surviving
//! replica ends with the same log and the same materialized store.
//!
//! ```sh
//! cargo run --example replicated_log
//! ```

use std::collections::BTreeMap;

use agreement::protected::memory_actor;
use agreement::smr::SmrNode;
use agreement::types::{Msg, Value};
use simnet::{ActorId, Duration, Simulation, Time};

/// A tiny command codec: `set(key, val)` packed into the `Value` id space.
fn cmd(key: u8, val: u8) -> Value {
    Value(0x5E7_0000 + ((key as u64) << 8) + val as u64)
}

fn decode(v: Value) -> Option<(u8, u8)> {
    (v.0 & !0xFFFF == 0x5E7_0000).then_some((((v.0 >> 8) & 0xFF) as u8, (v.0 & 0xFF) as u8))
}

fn main() {
    let n = 3u32;
    let m = 3u32;
    let mut sim: Simulation<Msg> = Simulation::new(2026);
    let procs: Vec<ActorId> = (0..n).map(ActorId).collect();
    let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();

    // Each replica has its own client workload of set() commands.
    for i in 0..n {
        let workload: Vec<Value> = (0..6).map(|c| cmd(c, 10 * (i as u8 + 1) + c)).collect();
        sim.add(SmrNode::new(
            ActorId(i),
            procs.clone(),
            mems.clone(),
            ActorId(0),
            workload,
            1, // f_M
            Duration::from_delays(20),
        ));
    }
    for _ in 0..m {
        sim.add(memory_actor(ActorId(0)));
    }

    // Let the initial leader commit a few entries, then kill it.
    sim.crash_at(ActorId(0), Time::from_delays(9));
    // Ω eventually nominates replica 1.
    sim.announce_leader(Time::from_delays(25), &procs, ActorId(1));

    sim.run_until(Time::from_delays(3_000), |s| {
        s.actor_as::<SmrNode>(ActorId(1))
            .is_some_and(|node| node.log_len() >= 9)
    });

    println!("== replicated_log: 3 replicas, leader crash at t=9 delays ==\n");
    let mut logs = Vec::new();
    for &p in &procs[1..] {
        let node = sim.actor_as::<SmrNode>(p).unwrap();
        println!(
            "replica {p}: {} entries, own commands committed: {}",
            node.log_len(),
            node.committed_own()
        );
        logs.push(node.log());
    }

    // Replay the common prefix into a KV store.
    let common = logs.iter().map(Vec::len).min().unwrap();
    assert_eq!(logs[0][..common], logs[1][..common], "logs diverged!");
    let mut store: BTreeMap<u8, u8> = BTreeMap::new();
    println!("\ncommitted log (common prefix, {common} entries):");
    for (i, v) in logs[0][..common].iter().enumerate() {
        match decode(*v) {
            Some((k, val)) => {
                store.insert(k, val);
                println!("  [{i:>2}] set({k}, {val})");
            }
            None => println!("  [{i:>2}] no-op"),
        }
    }
    println!("\nmaterialized store: {store:?}");
    println!("\nNote the leader's pre-crash entries survive the takeover: the new");
    println!("leader recovered them from the memories' slots before continuing.");
}
