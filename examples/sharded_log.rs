//! The sharded replicated-log service, end to end: a Zipf-skewed keyed
//! workload over four independent SMR groups, one leader crash and
//! failover mid-run, and the per-group service metrics afterwards.
//!
//! Each group is a full instance of the paper's Protected Memory Paxos
//! log (two-delay commits under a stable leader, permission-revocation
//! failover); the router partitions the key space by hash, keeps a
//! bounded window of commands in flight per group, and re-submits
//! in-flight commands when Ω elects a new leader.
//!
//! ```sh
//! cargo run --example sharded_log
//! ```

use agreement::harness::{run_sharded, ShardedScenario};
use agreement::sharded::WorkloadSpec;
use simnet::TICKS_PER_DELAY;

fn main() {
    let mut sc = ShardedScenario::common_case(4, 3, 3, 2026);
    sc.total_cmds = 2_000;
    sc.workload = WorkloadSpec::Zipf {
        keys: 4096,
        s: 0.99,
    };
    sc.window = 8;
    sc.batch = 4;
    sc.max_delays = 20_000;
    // Group 1's leader crashes mid-stream; Ω elects its second replica.
    sc.crash_leaders = vec![(1, 50)];
    sc.announce = vec![(1, 1, 120)];

    println!(
        "sharded_log: {} groups x (n={}, m={}), {} commands, zipf(0.99), \
         batch={}, window={}",
        sc.groups, sc.n, sc.m, sc.total_cmds, sc.batch, sc.window
    );
    println!("  group 1 leader crashes at t=50d; failover announced at t=120d\n");

    let r = run_sharded(&sc);

    println!("  group  entries  committed  p50(d)  p99(d)  max-stall(d)  logs-agree");
    for (g, report) in r.groups.iter().enumerate() {
        println!(
            "  {:>5}  {:>7}  {:>9}  {:>6.1}  {:>6.1}  {:>12.1}  {}",
            g,
            report.entries,
            report.committed,
            report.p50_latency_ticks as f64 / TICKS_PER_DELAY as f64,
            report.p99_latency_ticks as f64 / TICKS_PER_DELAY as f64,
            report.max_commit_gap_ticks as f64 / TICKS_PER_DELAY as f64,
            if report.logs_agree { "yes" } else { "NO" },
        );
    }
    println!(
        "\n  all committed: {}   logs agree: {}   partition respected: {}",
        r.all_committed, r.all_logs_agree, r.no_cross_group_leak
    );
    println!(
        "  elapsed: {:.0} delays   aggregate throughput: {:.2} commands/delay",
        r.elapsed_delays, r.committed_per_delay
    );
    println!(
        "  kernel: {} events, peak queue depth {}",
        r.events_dispatched, r.peak_queue_len
    );
    println!(
        "  failover duplicates suppressed: {}",
        r.duplicates_suppressed
    );

    assert!(r.all_committed && r.all_logs_agree && r.no_cross_group_leak);

    // The same service on the partitioned parallel kernel: one partition
    // per group, router on partition 0, and — the kernel's contract —
    // bit-identical reports whether 1 or 2 worker threads execute it.
    println!("\nsharded_log: partitioned kernel (4 partitions), thread sweep");
    let mut base = sc.clone();
    base.partitions = 4;
    let mut single = base.clone();
    single.threads = 1;
    let r1 = run_sharded(&single);
    let mut dual = base.clone();
    dual.threads = 2;
    let r2 = run_sharded(&dual);
    for (label, rp) in [("threads=1", &r1), ("threads=2", &r2)] {
        println!(
            "  {label}: committed {} in {:.0} delays ({:.2} cmds/delay), \
             partition queue peaks {:?}",
            rp.committed, rp.elapsed_delays, rp.committed_per_delay, rp.partition_peak_queue_lens,
        );
    }
    assert!(r1.all_committed && r1.all_logs_agree && r1.no_cross_group_leak);
    assert_eq!(r1, r2, "thread count changed the partitioned run");
    println!("  thread sweep: reports bit-identical across thread counts");

    // Online key-range migration: the same service on the versioned range
    // table, with the auto-rebalancer watching the commit stream. Zipf
    // head ranks are adjacent keys, so the even table pins the hot head
    // onto group 0 until the rebalancer splits it off, one key-range
    // migration (seal → snapshot → install → epoch flip, all through the
    // groups' own logs) at a time.
    println!("\nsharded_log: auto-rebalancing the zipf head off group 0");
    let mut rebal = sc.clone();
    rebal.crash_leaders.clear();
    rebal.announce.clear();
    rebal.range_routing = true;
    let r_static = run_sharded(&rebal);
    rebal.rebalance = Some(agreement::sharded::RebalanceConfig {
        check_every_delays: 40,
        cooldown_delays: 15,
        hot_group_permille: 300,
        hot_key_permille: 50,
        min_window_commits: 64,
        ..agreement::sharded::RebalanceConfig::default()
    });
    let r_auto = run_sharded(&rebal);
    for (label, rp) in [
        ("static range table", &r_static),
        ("auto-rebalance", &r_auto),
    ] {
        println!(
            "  {label:<18}: {:.2} cmds/delay in {:>5.0} delays, {} migrations, \
             {} commands re-routed, table version {}",
            rp.committed_per_delay,
            rp.elapsed_delays,
            rp.migrations_completed,
            rp.rerouted_commands,
            rp.routing_table_version,
        );
    }
    assert!(r_auto.all_committed && r_auto.all_logs_agree && r_auto.no_cross_group_leak);
    assert!(
        r_auto.migrations_completed >= 1,
        "rebalancer never triggered"
    );
    assert!(
        r_auto.elapsed_delays < r_static.elapsed_delays,
        "rebalancing failed to beat the static table"
    );
    println!(
        "  hot range split across groups: {:.2}x faster than the static table",
        r_static.elapsed_delays / r_auto.elapsed_delays
    );

    // Byzantine mode: the same service with every group replicating
    // through signed non-equivocating broadcast (GroupMode::Byzantine)
    // instead of crash PMP — the paper's n >= 2f+1 result carried into
    // the sharded layer. Group 0 carries a silent Byzantine replica
    // (f = 1 of n = 3); group 1's initial leader is an *equivocating*
    // adversary that rewrites its broadcast slot and fabricates commit
    // claims: the broadcast audit blocks it, the router's f+1
    // confirmation quorum ignores its lies, and the scripted failover
    // hands the group to an honest replica.
    println!("\nsharded_log: Byzantine mode (silent replica + equivocating leader)");
    let mut byz = ShardedScenario::common_case(4, 3, 3, 2026);
    byz.group_modes = vec![agreement::sharded::GroupMode::Byzantine; 4];
    byz.total_cmds = 400;
    byz.window = 4;
    byz.batch = 2;
    byz.max_delays = 40_000;
    byz.byz_silent = vec![(0, 2)];
    byz.byz_equivocators = vec![(1, 0)];
    byz.announce = vec![(1, 1, 80)];
    let r_byz = run_sharded(&byz);
    println!("  group  mode       entries  committed  p99(d)  logs-agree");
    for (g, report) in r_byz.groups.iter().enumerate() {
        println!(
            "  {:>5}  {:<9}  {:>7}  {:>9}  {:>6.1}  {}",
            g,
            format!("{:?}", report.mode),
            report.entries,
            report.committed,
            report.p99_latency_ticks as f64 / TICKS_PER_DELAY as f64,
            if report.logs_agree { "yes" } else { "NO" },
        );
    }
    println!(
        "  all committed: {}   logs agree: {}   partition respected: {}",
        r_byz.all_committed, r_byz.all_logs_agree, r_byz.no_cross_group_leak
    );
    println!(
        "  equivocations blocked: {}   invented commands left unconfirmed: {}   reports withheld pending quorum: {}",
        r_byz.equivocations_blocked, r_byz.byz_unconfirmed_claims, r_byz.byz_withheld_reports
    );
    assert!(r_byz.all_committed && r_byz.all_logs_agree && r_byz.no_cross_group_leak);
    assert!(
        r_byz.equivocations_blocked > 0 && r_byz.byz_unconfirmed_claims > 0,
        "the adversary path was not exercised"
    );
    println!("  byzantine demo: every command committed exactly once despite f faults/group");

    // Pipelined Byzantine broadcast (PR 8): the same Byzantine service
    // with a deep broadcast pipeline (8 concurrent signed broadcasts per
    // leader) and the speculative fast path (leader settles at write-ack,
    // router fast-confirms at f+1 matching reports). The router window is
    // 64 so the pipeline actually has commands to chew on. Measured
    // against a crash-PMP baseline of the same shape, the throughput gap
    // must close to ≤3x — the classic one-slot engine sits near 10x.
    println!("\nsharded_log: pipelined Byzantine broadcast vs crash baseline (G=4)");
    let pipe_base = {
        let mut sc = ShardedScenario::common_case(4, 3, 3, 2026);
        sc.total_cmds = 2_000;
        sc.window = 64;
        sc.batch = 8;
        sc.max_delays = 30_000;
        sc
    };
    let r_crash = run_sharded(&pipe_base);
    let mut pipe = pipe_base.clone();
    pipe.group_modes = vec![agreement::sharded::GroupMode::Byzantine; 4];
    pipe.byz_pipeline_window = 8;
    pipe.byz_fast_path = true;
    let r_pipe = run_sharded(&pipe);
    let gap = r_crash.committed_per_delay / r_pipe.committed_per_delay;
    println!(
        "  crash PMP baseline: {:>6.2} cmds/delay",
        r_crash.committed_per_delay
    );
    println!(
        "  pipelined byz (w=8, fast path): {:>6.2} cmds/delay — {gap:.2}x gap \
         ({} fast commits, {} fast confirms)",
        r_pipe.committed_per_delay, r_pipe.byz_fast_commits, r_pipe.byz_fast_confirms
    );
    assert!(r_pipe.all_committed && r_pipe.all_logs_agree && r_pipe.no_cross_group_leak);
    assert!(
        gap <= 3.0,
        "pipelined Byzantine gap {gap:.2}x exceeds the 3x target"
    );
    // The pipeline does not soften the adversary handling: the same run
    // with an equivocating leader in group 1 still blocks the rewrite,
    // leaves the invented commands unconfirmed, and fails over.
    let mut pipe_adv = pipe.clone();
    pipe_adv.max_delays = 60_000;
    pipe_adv.byz_equivocators = vec![(1, 0)];
    pipe_adv.announce = vec![(1, 1, 80)];
    let r_adv = run_sharded(&pipe_adv);
    println!(
        "  + equivocating leader: {} equivocations blocked, {} claims unconfirmed, \
         all committed: {}",
        r_adv.equivocations_blocked, r_adv.byz_unconfirmed_claims, r_adv.all_committed
    );
    assert!(r_adv.all_committed && r_adv.all_logs_agree && r_adv.no_cross_group_leak);
    assert!(
        r_adv.equivocations_blocked > 0 && r_adv.byz_unconfirmed_claims > 0,
        "pipelined run: the adversary path was not exercised"
    );
    println!("  pipelined demo: ≤3x of crash with the audit + confirmation quorum intact");

    // Command-lifecycle spans: the same service with span recording on —
    // one crash-PMP group next to one Byzantine group, so the broadcast
    // price (the paper's footnote 2: one non-equivocating delivery is ~6
    // delays) becomes visible stage by stage instead of hiding in an
    // end-to-end average. Recording is read-only: the traced run's
    // schedule is bit-identical to the untraced one.
    println!("\nsharded_log: command-lifecycle spans — crash vs Byzantine, stage by stage");
    let mut spans_sc = ShardedScenario::common_case(2, 3, 3, 2026);
    spans_sc.group_modes = vec![
        agreement::sharded::GroupMode::CrashPmp,
        agreement::sharded::GroupMode::Byzantine,
    ];
    spans_sc.total_cmds = 400;
    spans_sc.window = 6;
    spans_sc.batch = 2;
    spans_sc.max_delays = 40_000;
    spans_sc.record_spans = true;
    let r_spans = run_sharded(&spans_sc);
    assert!(r_spans.all_committed && r_spans.all_logs_agree);
    println!("  group  mode       spans  stage    p50(d)  p99(d)");
    for (stats, mode) in r_spans.span_stats.iter().zip(["crash", "byzantine"]) {
        for stage in &stats.stages {
            println!(
                "  {:>5}  {:<9}  {:>5}  {:<8} {:>6.2}  {:>6.2}",
                stats.group,
                mode,
                stats.spans,
                stage.stage,
                stage.hist.p50() as f64 / TICKS_PER_DELAY as f64,
                stage.hist.p99() as f64 / TICKS_PER_DELAY as f64,
            );
        }
    }
    let crash_total = r_spans.span_stats[0].stage("total").expect("crash total");
    let byz_total = r_spans.span_stats[1].stage("total").expect("byz total");
    assert!(crash_total.count() > 0 && byz_total.count() > 0);
    println!(
        "  footnote-2 price, per command end to end: {:.1}x (byzantine p50 {:.1}d vs crash {:.1}d)",
        byz_total.p50() as f64 / crash_total.p50().max(1) as f64,
        byz_total.p50() as f64 / TICKS_PER_DELAY as f64,
        crash_total.p50() as f64 / TICKS_PER_DELAY as f64,
    );
}
