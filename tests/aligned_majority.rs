//! Experiment E4 — §5.2's claim that processes and memories are
//! interchangeable agents: Aligned Paxos is live **iff** a majority of the
//! combined set `n + m` survives. The test sweeps the whole
//! (dead processes × dead memories) grid on several cluster shapes and
//! checks liveness exactly at the majority boundary, and safety everywhere.

use agreement::aligned::MemoryMode;
use agreement::harness::{run_aligned, Scenario};

/// Sweep the full failure grid for a given shape. The proposer (process 0)
/// is always kept alive — liveness needs *some* correct proposer; the
/// combined-majority rule governs the acceptors.
fn sweep(n: usize, m: usize, mode: MemoryMode) {
    let majority = (n + m) / 2 + 1;
    for dead_p in 0..n {
        for dead_m in 0..=m {
            let alive = (n + m) - dead_p - dead_m;
            let mut s = Scenario::common_case(n, m, (dead_p * 31 + dead_m) as u64);
            s.crash_procs = (1..=dead_p).map(|i| (i, 0)).collect();
            s.crash_mems = (0..dead_m).map(|j| (j, 0)).collect();
            s.max_delays = 2_500;
            let report = run_aligned(&s, mode);
            // Safety always.
            assert!(
                report.agreement,
                "{mode:?} n={n} m={m} dp={dead_p} dm={dead_m}: {report:?}"
            );
            if alive >= majority {
                assert!(
                    report.all_decided,
                    "{mode:?} n={n} m={m} dp={dead_p} dm={dead_m} (alive {alive} ≥ {majority}): \
                     should be live: {report:?}"
                );
                assert!(report.validity);
            } else {
                assert!(
                    report.decisions.is_empty(),
                    "{mode:?} n={n} m={m} dp={dead_p} dm={dead_m} (alive {alive} < {majority}): \
                     should be blocked: {report:?}"
                );
            }
        }
    }
}

#[test]
fn grid_three_procs_two_mems_disk_style() {
    sweep(3, 2, MemoryMode::DiskStyle);
}

#[test]
fn grid_three_procs_two_mems_protected() {
    sweep(3, 2, MemoryMode::Protected);
}

#[test]
fn grid_two_procs_five_mems() {
    sweep(2, 5, MemoryMode::DiskStyle);
}

#[test]
fn grid_four_procs_three_mems() {
    sweep(4, 3, MemoryMode::DiskStyle);
}

/// The headline contrast: configurations where neither a process majority
/// nor a memory majority survives, yet the combined majority does.
#[test]
fn combined_majority_beats_separate_majorities() {
    // n=4, m=3 → 7 agents, majority 4. Kill 2 processes and 1 memory:
    // process survivors 2/4 (no process majority), memory survivors 2/3
    // (a memory majority exists but pure Disk Paxos would ALSO need its
    // writer process alive — the point is the combined count).
    let mut s = Scenario::common_case(4, 3, 99);
    s.crash_procs = vec![(2, 0), (3, 0)];
    s.crash_mems = vec![(0, 0)];
    s.max_delays = 2_500;
    let report = run_aligned(&s, MemoryMode::DiskStyle);
    assert!(report.all_decided, "{report:?}");
    assert!(report.agreement && report.validity);
}

/// Mid-run failures (agents die after the protocol started) keep safety
/// and — with a surviving majority — liveness.
#[test]
fn mid_run_failures() {
    for t in [1u64, 2, 3, 5] {
        let mut s = Scenario::common_case(3, 2, 400 + t);
        s.crash_procs = vec![(2, t)];
        s.crash_mems = vec![(1, t)];
        s.max_delays = 2_500;
        let report = run_aligned(&s, MemoryMode::DiskStyle);
        assert!(report.agreement, "t={t}: {report:?}");
        assert!(report.all_decided, "t={t}: {report:?}");
    }
}
