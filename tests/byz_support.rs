//! Shared assertions of the Byzantine-mode service tests (included via
//! `#[path]` by `resilience_matrix.rs` and `byzantine_determinism.rs`,
//! which are separate test crates).

use agreement::harness::{ShardedRunReport, ShardedScenario};
use agreement::sharded::rebalance::decode_ctrl;
use agreement::types::Value;

/// Whether a log value is a client command (not a no-op filler, not a
/// migration control entry, not Byzantine junk — adversaries commit ids
/// far above the dense client range).
pub fn is_client_id(v: Value) -> bool {
    v.0 != u64::MAX && v.0 < (1 << 40) && decode_ctrl(v).is_none()
}

/// Service-wide exactly-once: no client command id appears twice across
/// all groups' logs, and every command landed somewhere.
pub fn assert_exactly_once(sc: &ShardedScenario, r: &ShardedRunReport) {
    let mut seen = std::collections::HashSet::new();
    for (g, group) in r.groups.iter().enumerate() {
        for &v in &group.log {
            if is_client_id(v) {
                assert!(seen.insert(v.0), "command {} duplicated (group {g})", v.0);
            }
        }
    }
    assert_eq!(seen.len(), sc.total_cmds, "committed ids != workload");
}
