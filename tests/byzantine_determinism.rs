//! Determinism and migration safety of Byzantine-mode sharded runs.
//!
//! The Byzantine path adds signatures, broadcast audits, adversary
//! actors, and router-side confirmation quorums on top of the crash
//! service — none of which may perturb the determinism contract:
//!
//! 1. **Thread invariance** — `(seed, partitions)` pins a Byzantine run
//!    (silent replicas, an equivocating leader, a key-range migration
//!    racing the equivocator's failover) bit-for-bit across 1/2/4 worker
//!    threads on the partitioned kernel, mirroring `tests/migration.rs`.
//! 2. **Golden schedule** — one fixed Byzantine run is pinned to its
//!    exact report numbers, so any accidental schedule change in the
//!    broadcast/adversary/confirmation machinery is caught at once.
//! 3. **Migrations stay exactly-once** when the source or destination
//!    group is Byzantine-mode — including a seal submitted to a lying
//!    leader and recovered through failover re-submission.

use agreement::harness::{run_sharded, ShardedRunReport, ShardedScenario};
use agreement::sharded::{GroupMode, KeyRange, ScriptedMigration};

#[path = "byz_support.rs"]
mod byz_support;
use byz_support::{assert_exactly_once, is_client_id};

/// The adversarial scenario all three pins share: G=4 Byzantine groups,
/// a silent replica in group 0, an equivocating leader in group 1 whose
/// group is also the *source* of a key-range migration scripted before
/// its failover — the seal is first submitted to the liar, claims die at
/// the confirmation quorum, and the failover re-submission completes the
/// migration through the honest successor.
fn adversarial_scenario(seed: u64) -> ShardedScenario {
    let mut sc = ShardedScenario::common_case(4, 3, 3, seed);
    sc.group_modes = vec![GroupMode::Byzantine; 4];
    sc.total_cmds = 120;
    sc.window = 4;
    sc.batch = 2;
    sc.max_delays = 40_000;
    sc.byz_silent = vec![(0, 2)];
    sc.byz_equivocators = vec![(1, 0)];
    sc.announce = vec![(1, 1, 80)];
    // Group 1 owns [1024, 2048) under the even version-0 table; move a
    // slice of it to group 3 while group 1's leader is still the liar.
    sc.migrations = vec![ScriptedMigration {
        at_delays: 40,
        range: KeyRange { lo: 1024, hi: 1536 },
        to: 3,
    }];
    sc
}

fn assert_adversarial_outcome(sc: &ShardedScenario, r: &ShardedRunReport) {
    assert!(r.all_committed, "{r:?}");
    assert!(r.all_logs_agree, "replica logs diverged");
    assert!(r.no_cross_group_leak, "partition violated");
    assert_exactly_once(sc, r);
    assert_eq!(r.migrations_completed, 1, "migration lost: {r:?}");
    assert_eq!(r.routing_table_version, 1);
    assert!(
        r.byz_unconfirmed_claims > 0,
        "the invented commands left no trace"
    );
    assert!(
        r.byz_withheld_reports > 0,
        "the confirmation quorum did no work"
    );
}

#[test]
fn byzantine_adversarial_run_is_thread_count_invariant() {
    let mut sc = adversarial_scenario(59);
    sc.partitions = 4;
    let reports: Vec<ShardedRunReport> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let mut s = sc.clone();
            s.threads = threads;
            run_sharded(&s)
        })
        .collect();
    assert_adversarial_outcome(&sc, &reports[0]);
    assert_eq!(reports[0], reports[1], "2 threads changed the run");
    assert_eq!(reports[0], reports[2], "4 threads changed the run");
    // And the monolithic kernel decides the same service outcome.
    let mut mono = sc.clone();
    mono.partitions = 1;
    let m = run_sharded(&mono);
    assert_eq!(m.committed, reports[0].committed);
    assert_eq!(m.migrations_completed, reports[0].migrations_completed);
}

#[test]
fn byzantine_run_is_reproducible_and_seed_sensitive() {
    let sc = adversarial_scenario(61);
    let a = run_sharded(&sc);
    let b = run_sharded(&sc);
    assert_eq!(a, b, "same seed, different Byzantine run");
    let mut other = sc.clone();
    other.seed = 62;
    let c = run_sharded(&other);
    assert_ne!(a, c, "Byzantine runs ignored the seed");
}

/// The golden pin: the exact numbers of one fixed Byzantine run. If this
/// fails after an intentional protocol change, re-record the constants;
/// if it fails otherwise, the broadcast/adversary schedule drifted.
#[test]
fn byzantine_golden_schedule_pin() {
    let sc = adversarial_scenario(59);
    let r = run_sharded(&sc);
    assert_adversarial_outcome(&sc, &r);
    println!(
        "GOLDEN committed={} elapsed={} total_entries={} equiv={} unconfirmed={} withheld={} dups={} rerouted={}",
        r.committed,
        r.elapsed_delays,
        r.total_entries,
        r.equivocations_blocked,
        r.byz_unconfirmed_claims,
        r.byz_withheld_reports,
        r.duplicates_suppressed,
        r.rerouted_commands,
    );
    assert_eq!(
        (
            r.committed,
            r.elapsed_delays,
            r.total_entries,
            r.equivocations_blocked,
            r.byz_unconfirmed_claims,
            r.byz_withheld_reports,
            r.duplicates_suppressed,
            r.rerouted_commands,
        ),
        (120, 483.0, 123, 2, 2, 125, 0, 11),
        "golden Byzantine schedule drifted"
    );
}

/// Migrations stay exactly-once when the *destination* is Byzantine-mode
/// and the source is crash-mode (and per-key order holds across the
/// flip): the snapshot primes the Byzantine replicas' dedup exactly as
/// it does the crash replicas'.
#[test]
fn migration_into_byzantine_group_is_exactly_once() {
    let mut sc = ShardedScenario::common_case(4, 3, 3, 17);
    sc.group_modes = vec![
        GroupMode::CrashPmp,
        GroupMode::Byzantine,
        GroupMode::CrashPmp,
        GroupMode::Byzantine,
    ];
    sc.total_cmds = 200;
    sc.window = 6;
    sc.batch = 2;
    sc.max_delays = 40_000;
    // Crash group 0 → Byzantine group 1, then Byzantine group 1's slice
    // onward to crash group 2: both directions in one run.
    sc.migrations = vec![
        ScriptedMigration {
            at_delays: 40,
            range: KeyRange { lo: 0, hi: 512 },
            to: 1,
        },
        ScriptedMigration {
            at_delays: 41,
            range: KeyRange { lo: 1536, hi: 2048 },
            to: 2,
        },
    ];
    let r = run_sharded(&sc);
    assert!(r.all_committed, "{r:?}");
    assert!(r.all_logs_agree && r.no_cross_group_leak);
    assert_eq!(r.migrations_completed, 2, "{r:?}");
    assert_eq!(r.routing_table_version, 2);
    assert_exactly_once(&sc, &r);
    // Per-key order across the flips: ids of any single key commit in
    // strictly increasing order across the whole service.
    let keys = {
        let mut keys = vec![u64::MAX];
        keys.extend(agreement::sharded::sample_keys(
            &sc.workload,
            sc.seed,
            sc.total_cmds,
        ));
        keys
    };
    let mut per_key: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
    for group in &r.groups {
        for &v in &group.log {
            if is_client_id(v) {
                per_key.entry(keys[v.0 as usize]).or_default().push(v.0);
            }
        }
    }
    for (key, ids) in per_key {
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "key {key} commands reordered: {ids:?}");
    }
}

/// The pipelined variant of the adversarial scenario: same faults, but
/// Byzantine groups run a 4-deep broadcast window with the speculative
/// fast path on.
fn pipelined_adversarial_scenario(seed: u64) -> ShardedScenario {
    let mut sc = adversarial_scenario(seed);
    sc.byz_pipeline_window = 4;
    sc.byz_fast_path = true;
    sc
}

/// Thread invariance of the windowed + fast-path machinery: the pipeline
/// ring, write-ack settles, and router fast-confirm accounting are all
/// inside the deterministic simulation, so `(seed, partitions)` still
/// pins the run bit-for-bit across 1/2/4 worker threads.
#[test]
fn pipelined_fast_path_run_is_thread_count_invariant() {
    let mut sc = pipelined_adversarial_scenario(59);
    sc.partitions = 4;
    let reports: Vec<ShardedRunReport> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let mut s = sc.clone();
            s.threads = threads;
            run_sharded(&s)
        })
        .collect();
    assert_adversarial_outcome(&sc, &reports[0]);
    assert!(
        reports[0].byz_fast_commits > 0,
        "fast path never fired: {:?}",
        reports[0]
    );
    assert_eq!(reports[0], reports[1], "2 threads changed the run");
    assert_eq!(reports[0], reports[2], "4 threads changed the run");
}

/// Takeover out of a deep pipeline: an honest leader is demoted by Ω
/// mid-stream with a 4-deep window of unretired slots (fast path off →
/// some self-delivered; fast path on → some settled at the write ack), a
/// Byzantine replica has been forging delivery receipts all along, and
/// the successor's scan must (a) reject the forged receipts on
/// provenance, (b) adopt the receipted prefix, and (c) keep the service
/// exactly-once with agreeing logs.
#[test]
fn windowed_takeover_adopts_receipted_prefix_exactly_once() {
    for fast in [false, true] {
        let mut sc = ShardedScenario::common_case(1, 3, 3, 23);
        sc.group_modes = vec![GroupMode::Byzantine];
        sc.total_cmds = 160;
        sc.window = 16;
        sc.batch = 2;
        sc.max_delays = 40_000;
        sc.byz_pipeline_window = 4;
        sc.byz_fast_path = fast;
        // Replica 2 forges receipts for wires it never delivered; the
        // scan's provenance check must strip their adoption preference.
        sc.byz_receipt_forgers = vec![(0, 2)];
        // Demote the (honest, pipelining) initial leader mid-stream.
        sc.announce = vec![(0, 1, 120)];
        let r = run_sharded(&sc);
        assert!(r.all_committed, "fast={fast}: {r:?}");
        assert!(r.all_logs_agree, "fast={fast}: replica logs diverged");
        assert_exactly_once(&sc, &r);
        assert!(
            r.byz_receipts_rejected > 0,
            "fast={fast}: forged receipts were never caught: {r:?}"
        );
        if fast {
            assert!(
                r.byz_fast_commits > 0,
                "fast path never fired before the takeover: {r:?}"
            );
        }
    }
}
