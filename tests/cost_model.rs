//! The RDMA cost model's two load-bearing contracts.
//!
//! 1. **Lookahead soundness** — `DelayModel::min_delay()` must be a true
//!    lower bound on `sample_classed(...)` for *every* variant, time,
//!    seed, verb, payload size, and doorbell batch width. The partitioned
//!    kernel synchronizes on exactly this bound (its conservative window
//!    is one `min_delay()` of virtual time), so a single undershooting
//!    sample would silently break bit-determinism.
//! 2. **Bit-identity under `DelayModel::Rdma`** — a partitioned sharded
//!    run under the RDMA cost model must produce the identical report at
//!    1, 2, and 4 worker threads, with and without adaptive doorbell
//!    batching.

use agreement::harness::{run_sharded, ShardedRunReport, ShardedScenario};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::{CostClass, DelayModel, Duration, RdmaCost, Time, Verb};

/// The model under test for a property-case index: cycles through every
/// variant, including all three RDMA presets.
fn model(ix: u64) -> DelayModel {
    match ix % 6 {
        0 => DelayModel::Constant(Duration::from_delays(1 + ix % 5)),
        1 => DelayModel::Uniform {
            lo: Duration::from_delays(1),
            hi: Duration::from_delays(2 + ix % 7),
        },
        2 => DelayModel::PartialSynchrony {
            lo: Duration::from_delays(1),
            hi: Duration::from_delays(2 + ix % 20),
            gst: Time::from_delays(50 + ix % 100),
            after: Duration::from_delays(1 + ix % 3),
        },
        3 => DelayModel::Rdma(RdmaCost::baseline()),
        4 => DelayModel::Rdma(RdmaCost::write_optimized()),
        _ => DelayModel::Rdma(RdmaCost::congested()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `min_delay() <= sample_classed(now, class, rng)` for every variant
    /// across seeds, times, verbs, payload sizes, and batch widths — the
    /// partitioned kernel's lookahead invariant.
    #[test]
    fn min_delay_is_a_lower_bound_on_every_sample(
        model_ix in 0u64..60,
        seed in 0u64..1_000_000,
        now_delays in 0u64..500,
        verb_ix in 0usize..4,
        bytes in 0u32..2_000_000,
        wrs in 0u32..5_000,
    ) {
        let m = model(model_ix);
        let floor = m.min_delay();
        let verb = [Verb::Send, Verb::Write, Verb::Read, Verb::Cas][verb_ix];
        let class = CostClass::new(verb, bytes, wrs);
        let now = Time::from_delays(now_delays);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let d = m.sample_classed(now, class, &mut rng);
            prop_assert!(
                d >= floor,
                "{m:?} sampled {d:?} below min_delay {floor:?} for {class:?} at {now:?}"
            );
            // The unclassed path must respect the same floor.
            let plain = m.sample(now, &mut rng);
            prop_assert!(plain >= floor);
        }
    }

    /// PartialSynchrony's DLS bound: nothing sent at `now` lands after
    /// `gst + after`, wherever `now` falls relative to GST.
    #[test]
    fn partial_synchrony_never_delivers_past_gst_plus_after(
        seed in 0u64..1_000_000,
        now_delays in 0u64..200,
        gst_delays in 1u64..150,
        hi_delays in 1u64..80,
        after_delays in 1u64..5,
    ) {
        let gst = Time::from_delays(gst_delays);
        let after = Duration::from_delays(after_delays);
        let m = DelayModel::PartialSynchrony {
            lo: Duration::from_delays(1),
            hi: Duration::from_delays(hi_delays.max(1)),
            gst,
            after,
        };
        let now = Time::from_delays(now_delays);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let d = m.sample(now, &mut rng);
            if now >= gst {
                prop_assert_eq!(d, after);
            } else {
                prop_assert!(now + d <= gst + after, "pre-GST send delivered at {:?}, after gst+after {:?}", now + d, gst + after);
            }
        }
    }
}

/// G=4 partitioned sharded run under the RDMA cost model; `adaptive`
/// switches the leaders to adaptive doorbell batching.
fn rdma_scenario(threads: usize, adaptive: bool) -> ShardedScenario {
    let mut sc = ShardedScenario::common_case(4, 3, 3, 11);
    sc.delay = DelayModel::Rdma(RdmaCost::write_optimized());
    sc.total_cmds = 400;
    sc.window = 8;
    sc.batch = 2;
    if adaptive {
        sc.adaptive_batch = 8;
    }
    sc.partitions = 4;
    sc.threads = threads;
    sc.max_delays = 30_000;
    sc
}

fn assert_identical(a: &ShardedRunReport, b: &ShardedRunReport, what: &str) {
    for (g, (ga, gb)) in a.groups.iter().zip(&b.groups).enumerate() {
        assert_eq!(ga, gb, "{what}: group {g} reports differ");
    }
    assert_eq!(a, b, "{what}: reports differ");
}

#[test]
fn rdma_model_thread_sweep_is_bit_identical() {
    for adaptive in [false, true] {
        let base = run_sharded(&rdma_scenario(1, adaptive));
        assert!(base.all_committed, "adaptive={adaptive}: run incomplete");
        assert!(base.all_logs_agree, "adaptive={adaptive}: logs diverged");
        for threads in [2usize, 4] {
            let other = run_sharded(&rdma_scenario(threads, adaptive));
            assert_identical(
                &base,
                &other,
                &format!("adaptive={adaptive} threads={threads}"),
            );
        }
    }
}

#[test]
fn adaptive_batching_beats_per_slot_writes_under_rdma_costs() {
    // Same closed-loop workload, fixed batch 1 vs adaptive cap 8: packing
    // the backlog into doorbell-batched WRITE bursts must commit more
    // commands per delay.
    let mut fixed = rdma_scenario(1, false);
    fixed.partitions = 1;
    fixed.batch = 1;
    let mut adaptive = rdma_scenario(1, true);
    adaptive.partitions = 1;
    adaptive.batch = 1;
    let f = run_sharded(&fixed);
    let a = run_sharded(&adaptive);
    assert!(f.all_committed && a.all_committed);
    assert!(
        a.committed_per_delay > f.committed_per_delay,
        "adaptive {:.3} cmds/delay did not beat per-slot {:.3}",
        a.committed_per_delay,
        f.committed_per_delay
    );
}
