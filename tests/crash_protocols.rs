//! Experiment E3 — the crash-failure algorithms under failure sweeps:
//! Protected Memory Paxos (Theorem 5.1) and the baselines it is measured
//! against, plus cross-protocol sanity on common scenarios.

use agreement::harness::{run_disk_paxos, run_fast_paxos, run_mp_paxos, run_protected, Scenario};
use agreement::protected::ProtectedPaxosActor;
use agreement::smr::SmrNode;
use agreement::types::{Msg, Value};
use simnet::{ActorId, DelayModel, Duration, Simulation, Time};

/// PMP: every subset of processes containing the (eventual) leader decides.
#[test]
fn protected_crash_subset_sweep() {
    let n = 4;
    // Crash every non-empty subset of {1,2,3} (keep 0 alive as leader).
    for mask in 0u32..8 {
        let crash: Vec<(usize, u64)> = (0..3)
            .filter(|b| mask & (1 << b) != 0)
            .map(|b| (b + 1, 0))
            .collect();
        let mut s = Scenario::common_case(n, 3, 600 + mask as u64);
        s.crash_procs = crash.clone();
        let report = run_protected(&s);
        assert!(report.all_decided, "mask {mask:03b}: {report:?}");
        assert!(
            report.agreement && report.validity,
            "mask {mask:03b}: {report:?}"
        );
        // Survivor count never matters for PMP: the leader alone suffices.
        assert_eq!(report.first_decision_delays, Some(2.0), "mask {mask:03b}");
    }
}

/// PMP: leader crashes at every point in its 2-delay window; a successor
/// must finish with a single value.
#[test]
fn protected_leader_crash_window_sweep() {
    for crash_at in 0..6u64 {
        let mut s = Scenario::common_case(3, 3, 700 + crash_at);
        s.crash_procs = vec![(0, crash_at)];
        s.announce = vec![(15, 1)];
        s.max_delays = 5_000;
        let report = run_protected(&s);
        assert!(report.all_decided, "crash@{crash_at}: {report:?}");
        assert!(report.agreement, "crash@{crash_at}: {report:?}");
        assert!(report.validity, "crash@{crash_at}: {report:?}");
    }
}

/// PMP under link jitter plus dueling leaders: safety across seeds.
#[test]
fn protected_jitter_and_duel_sweep() {
    for seed in 0..10u64 {
        let mut s = Scenario::common_case(3, 3, 800 + seed);
        s.delay = DelayModel::Uniform {
            lo: Duration::from_delays(1),
            hi: Duration::from_delays(5),
        };
        s.announce = vec![(3, 1), (7, 2), (50, 1)];
        s.max_delays = 10_000;
        let report = run_protected(&s);
        assert!(report.agreement, "seed {seed}: {report:?}");
        assert!(report.all_decided, "seed {seed}: {report:?}");
    }
}

/// All four crash protocols agree with themselves on identical scenarios
/// (differential testing across protocol implementations).
#[test]
fn cross_protocol_differential() {
    for seed in 0..5u64 {
        let s = Scenario::common_case(3, 3, 900 + seed);
        for (name, report) in [
            ("mp", run_mp_paxos(&s)),
            ("fast", run_fast_paxos(&s, 0)),
            ("disk", run_disk_paxos(&s)),
            ("pmp", run_protected(&s)),
        ] {
            assert!(report.all_decided, "{name} seed {seed}: {report:?}");
            assert!(report.agreement, "{name} seed {seed}: {report:?}");
            assert!(report.validity, "{name} seed {seed}: {report:?}");
        }
    }
}

/// The ablation behind E2: dynamic permissions are exactly a 2-delay
/// advantage over Disk Paxos's verification read, across cluster sizes.
#[test]
fn permission_ablation_delay_gap() {
    for n in [2usize, 3, 5, 7] {
        for m in [3usize, 5] {
            let s = Scenario::common_case(n, m, 42);
            let pmp = run_protected(&s).first_decision_delays.unwrap();
            let disk = run_disk_paxos(&s).first_decision_delays.unwrap();
            assert_eq!(pmp, 2.0, "n={n} m={m}");
            assert_eq!(disk, 4.0, "n={n} m={m}");
        }
    }
}

/// SMR (multi-instance PMP): sustained throughput at one write per entry,
/// with a mid-stream leader change, stays fork-free — heavier version of
/// the module tests, at integration scale.
#[test]
fn smr_long_run_with_two_takeovers() {
    let (n, m) = (3u32, 3u32);
    let mut sim: Simulation<Msg> = Simulation::new(77);
    let procs: Vec<ActorId> = (0..n).map(ActorId).collect();
    let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
    for i in 0..n {
        let workload: Vec<Value> = (0..20)
            .map(|c| Value(10_000 * (i as u64 + 1) + c))
            .collect();
        sim.add(SmrNode::new(
            ActorId(i),
            procs.clone(),
            mems.clone(),
            ActorId(0),
            workload,
            1,
            Duration::from_delays(20),
        ));
    }
    for _ in 0..m {
        sim.add(agreement::protected::memory_actor(ActorId(0)));
    }
    sim.crash_at(ActorId(0), Time::from_delays(11));
    sim.announce_leader(Time::from_delays(30), &procs, ActorId(1));
    sim.crash_at(ActorId(1), Time::from_delays(90));
    sim.announce_leader(Time::from_delays(120), &procs, ActorId(2));
    sim.run_until(Time::from_delays(5_000), |s| {
        s.actor_as::<SmrNode>(ActorId(2))
            .is_some_and(|x| x.log_len() >= 15 && x.committed_own() >= 2)
    });
    let survivor = sim.actor_as::<SmrNode>(ActorId(2)).unwrap();
    assert!(
        survivor.log_len() >= 15,
        "log stalled: {}",
        survivor.log_len()
    );
    // Entries committed by all three leadership terms are present.
    let log = survivor.log();
    assert!(
        log.iter().any(|v| (10_000..20_000).contains(&v.0)),
        "term-0 entries lost"
    );
    assert!(
        log.iter().any(|v| (20_000..30_000).contains(&v.0)),
        "term-1 entries missing"
    );
    assert!(
        log.iter().any(|v| (30_000..40_000).contains(&v.0)),
        "term-2 entries missing"
    );
}

/// Memory crash mid-protocol (not just at start): the write quorum shrinks
/// but m - f_M still suffices.
#[test]
fn protected_memory_crash_mid_run() {
    for crash_at in [1u64, 2, 3] {
        let mut s = Scenario::common_case(3, 3, 1100 + crash_at);
        s.crash_mems = vec![(1, crash_at)];
        let report = run_protected(&s);
        assert!(report.all_decided, "mem crash@{crash_at}: {report:?}");
        assert!(report.agreement, "mem crash@{crash_at}: {report:?}");
    }
}

/// Direct use of the actor API (not the harness) still gives 2 delays —
/// guards the public API surface the examples rely on.
#[test]
fn direct_actor_api_contract() {
    let (n, m) = (2u32, 3u32);
    let mut sim: Simulation<Msg> = Simulation::new(1);
    let procs: Vec<ActorId> = (0..n).map(ActorId).collect();
    let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
    for i in 0..n {
        sim.add(ProtectedPaxosActor::new(
            ActorId(i),
            procs.clone(),
            mems.clone(),
            agreement::Instance(0),
            Value(5 + i as u64),
            ActorId(0),
            1,
            Duration::from_delays(20),
        ));
    }
    for _ in 0..m {
        sim.add(agreement::protected::memory_actor(ActorId(0)));
    }
    sim.run_to_quiescence(Time::from_delays(100));
    let a0 = sim.actor_as::<ProtectedPaxosActor>(ActorId(0)).unwrap();
    assert_eq!(a0.decision(), Some(Value(5)));
    assert_eq!(a0.decided_at.unwrap().as_delays(), 2.0);
}
