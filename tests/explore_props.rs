//! Property tests for the schedule explorer's independence relation
//! (`agreement::explore::independence`).
//!
//! The relation licenses the explorer to prune one order of a pair of
//! same-tick events; that is sound only if swapping an
//! independent-classified pair really is unobservable. The properties
//! drive a *real* [`rdma_sim::MemoryActor`] with pairs of generated
//! requests, delivered in both orders via the kernel's choice hook:
//!
//! 1. **Independent ⇒ bit-identical outcomes**: the memory's final
//!    register state and both requesters' responses are equal across
//!    the two orders.
//! 2. **Outcome-differing ⇒ conflicting** (contrapositive of 1, checked
//!    directly so a miss is reported as the ordering that exposes it):
//!    any pair the swap *can* distinguish must be classified as a
//!    conflict, i.e. never pruned.
//!
//! Plus direct classification pins for the pairs the relation must
//! never prune: same-register write/write and write/read, permission
//! changes against everything on the memory.

use agreement::explore::independence::{
    conflicts, footprint, independent, EventClass, ExploredEvent,
};
use agreement::types::{RegVal, Value};
use proptest::prelude::*;
use rdma_sim::{
    LegalChange, MemEmbed, MemRequest, MemResponse, MemWire, MemoryActor, OpId, Permission, RegId,
    RegionId, RegionSpec,
};
use simnet::{Actor, ActorId, Context, EventKind, Simulation, Time};

/// Minimal message type embedding the memory wire protocol.
#[derive(Clone, Debug, PartialEq)]
enum TMsg {
    Mem(MemWire<RegVal>),
}
impl MemEmbed<RegVal> for TMsg {
    fn from_wire(wire: MemWire<RegVal>) -> Self {
        TMsg::Mem(wire)
    }
    fn into_wire(self) -> Result<MemWire<RegVal>, Self> {
        let TMsg::Mem(w) = self;
        Ok(w)
    }
}

/// Fires one scripted request at the memory and records the response.
struct Driver {
    mem: ActorId,
    script: Option<MemRequest<RegVal>>,
    responses: Vec<(OpId, MemResponse<RegVal>)>,
}
impl Actor<TMsg> for Driver {
    fn on_event(&mut self, ctx: &mut Context<'_, TMsg>, ev: EventKind<TMsg>) {
        match ev {
            EventKind::Start => {
                if let Some(req) = self.script.take() {
                    ctx.send(self.mem, TMsg::Mem(MemWire::Req { op: OpId(0), req }));
                }
            }
            EventKind::Msg {
                msg: TMsg::Mem(MemWire::Resp { op, resp }),
                ..
            } => self.responses.push((op, resp)),
            _ => {}
        }
    }
}

/// The single region every generated request addresses: all registers,
/// open to everybody, permission changes allowed (so `ChangePerm` is an
/// *effective* operation the swap can observe).
const REGION: RegionId = RegionId(0);

/// Everything observable about one ordering of the pair: the memory's
/// final register state over the generated universe plus both drivers'
/// responses.
type Outcome = (
    Vec<Option<RegVal>>,
    Vec<(OpId, MemResponse<RegVal>)>,
    Vec<(OpId, MemResponse<RegVal>)>,
);

/// Runs `[a_req from driver A, b_req from driver B]` against one
/// memory, forcing the same-tick delivery order with the kernel choice
/// hook: `swapped` delivers B's request first.
fn run_pair(a_req: &MemRequest<RegVal>, b_req: &MemRequest<RegVal>, swapped: bool) -> Outcome {
    let mut sim: Simulation<TMsg> = Simulation::new(5);
    let mem_id = sim.add(
        MemoryActor::<RegVal, TMsg>::new(LegalChange::AnyChange).with_region(
            REGION,
            RegionSpec::All,
            Permission::open(),
        ),
    );
    let a = sim.add(Driver {
        mem: mem_id,
        script: Some(a_req.clone()),
        responses: Vec::new(),
    });
    let b = sim.add(Driver {
        mem: mem_id,
        script: Some(b_req.clone()),
        responses: Vec::new(),
    });
    // Choice points: two from the 3-way Start slate, then the request
    // pair at the memory — position 2 picks the delivery order.
    let vector = [0usize, 0, usize::from(swapped)];
    let mut pos = 0usize;
    sim.set_choice_hook(Box::new(move |_t, choices| {
        if choices.len() == 1 {
            return 0;
        }
        let pick = vector.get(pos).copied().unwrap_or(0);
        pos += 1;
        pick
    }));
    sim.run_to_quiescence(Time::from_delays(50));
    let mem = sim
        .actor_as::<MemoryActor<RegVal, TMsg>>(mem_id)
        .expect("memory actor");
    let registers = universe()
        .into_iter()
        .map(|r| mem.register(r).cloned())
        .collect();
    let resp = |id: ActorId| {
        sim.actor_as::<Driver>(id)
            .expect("driver")
            .responses
            .clone()
    };
    (registers, resp(a), resp(b))
}

/// Every register a generated request can touch.
fn universe() -> Vec<RegId> {
    let mut out = Vec::new();
    for space in 1u16..=2 {
        for x in 0u64..3 {
            for y in 0u64..3 {
                for z in 0u64..3 {
                    out.push(RegId::new(space, x, y, z));
                }
            }
        }
    }
    out
}

/// Decodes a generated request from small integers (the proptest shim's
/// native strategies).
fn decode(kind: usize, space: u16, x: u64, y: u64, z: u64, val: u64) -> MemRequest<RegVal> {
    let reg = RegId::new(space, x, y, z);
    match kind {
        0 => MemRequest::Read {
            region: REGION,
            reg,
        },
        1 => MemRequest::Write {
            region: REGION,
            reg,
            value: RegVal::LbFlag(Value(val)),
        },
        2 => MemRequest::WriteMany {
            region: REGION,
            writes: vec![
                (reg, RegVal::LbFlag(Value(val))),
                // A second register in the same row.
                (
                    RegId::new(space, x, y, (z + 1) % 3),
                    RegVal::LbFlag(Value(val + 1)),
                ),
            ],
        },
        3 => MemRequest::ReadRange {
            region: REGION,
            within: match val % 4 {
                0 => None,
                1 => Some(RegionSpec::All),
                2 => Some(RegionSpec::Space(space)),
                _ => Some(RegionSpec::row(space, x)),
            },
        },
        _ => MemRequest::ChangePerm {
            region: REGION,
            new: if val.is_multiple_of(2) {
                Permission::open()
            } else {
                Permission::read_only()
            },
        },
    }
}

/// Wraps a request as the explorer's event summary: a memory request
/// arriving at the memory actor, from distinct requesters.
fn as_event(seq: u64, from: u32, req: &MemRequest<RegVal>) -> ExploredEvent {
    ExploredEvent {
        seq,
        // Both requests land on the same memory actor — the same-actor
        // case where only the footprint carve-out can declare
        // independence.
        to: ActorId(0),
        kind: EventClass::MemReq {
            from: ActorId(from),
            fp: footprint(req),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Independent-classified pairs commute observably; pairs the swap
    /// distinguishes are classified as conflicts (never pruned).
    #[test]
    fn independence_classification_matches_real_memory(
        a_kind in 0usize..5,
        a_space in 1u16..3,
        a_x in 0u64..3,
        a_y in 0u64..3,
        a_z in 0u64..3,
        a_val in 0u64..8,
        b_kind in 0usize..5,
        b_space in 1u16..3,
        b_x in 0u64..3,
        b_y in 0u64..3,
        b_z in 0u64..3,
        b_val in 0u64..8,
    ) {
        let a_req = decode(a_kind, a_space, a_x, a_y, a_z, a_val);
        let b_req = decode(b_kind, b_space, b_x, b_y, b_z, b_val);
        let forward = run_pair(&a_req, &b_req, false);
        let swapped = run_pair(&a_req, &b_req, true);
        let commute = forward == swapped;
        let ind = independent(&as_event(1, 10, &a_req), &as_event(2, 11, &b_req));
        // Soundness: a pruned (independent) order is unobservable.
        prop_assert!(
            !ind || commute,
            "classified independent but orders differ:\n  a = {a_req:?}\n  b = {b_req:?}"
        );
        // Equivalently: any observable pair must be kept (conflict).
        if !commute {
            prop_assert!(
                conflicts(&footprint(&a_req), &footprint(&b_req)),
                "orders observably differ yet footprints do not conflict:\n  \
                 a = {a_req:?}\n  b = {b_req:?}"
            );
        }
    }
}

/// The pairs the relation must never prune, pinned explicitly (the
/// property above only exercises what the generator happens to draw).
#[test]
fn conflicting_pairs_are_never_classified_independent() {
    let reg = RegId::new(1, 0, 0, 0);
    let write = MemRequest::Write {
        region: REGION,
        reg,
        value: RegVal::LbFlag(Value(1)),
    };
    let write2 = MemRequest::Write {
        region: REGION,
        reg,
        value: RegVal::LbFlag(Value(2)),
    };
    let read = MemRequest::Read {
        region: REGION,
        reg,
    };
    let scan_all = MemRequest::ReadRange {
        region: REGION,
        within: None,
    };
    let perm = MemRequest::ChangePerm {
        region: REGION,
        new: Permission::read_only(),
    };
    for (x, y) in [
        (&write, &write2),
        (&write, &read),
        (&write, &scan_all),
        (&perm, &read),
        (&perm, &write),
        (&perm, &scan_all),
    ] {
        assert!(
            !independent(&as_event(1, 10, x), &as_event(2, 11, y)),
            "must conflict: {x:?} vs {y:?}"
        );
        assert!(
            !independent(&as_event(2, 11, y), &as_event(1, 10, x)),
            "conflict must be symmetric: {y:?} vs {x:?}"
        );
    }
    // Same-tick events at *different* actors always commute, whatever
    // they carry — the per-actor state partition of the kernel.
    let at_other_memory = ExploredEvent {
        to: ActorId(1),
        ..as_event(3, 12, &write)
    };
    assert!(independent(&as_event(1, 10, &write), &at_other_memory));
}
