//! Regression pins for the systematic schedule explorer
//! (`agreement::explore`).
//!
//! Three kinds of pin:
//!
//! 1. **Exhaustiveness against a hand count.** The `tiny_pmp` scenario
//!    has five actors (three replicas, one memory, the router), all
//!    starting at tick 0. Depth-bounding naive exploration to the first
//!    four choice points therefore enumerates exactly the Start
//!    orderings: `5 * 4 * 3 * 2 = 120` schedules (the fifth dispatch is
//!    forced). If the frontier bookkeeping ever drops or double-counts
//!    a branch, this number moves.
//! 2. **Pruning soundness and effectiveness.** Sleep-set exploration of
//!    the same space must reach the same set of final-state
//!    fingerprints as the naive sweep while running strictly fewer
//!    schedules — and the full (unbounded) pruned sweep's schedule
//!    count is pinned so reduction regressions surface as a diff, not
//!    a timeout.
//! 3. **A replayable corpus of the historical dedup bug.** With
//!    `disable_session_dedup`, the default `(time, seq)` schedule
//!    passes; only same-tick reorderings around the leader crash
//!    duplicate a command. The corpus pins distinct explorer-found
//!    failing choice vectors so the kernel's choice-point semantics
//!    (and the bug's schedule-dependence) cannot silently drift.

use agreement::explore::{
    explore, render_schedule_timeline, run_schedule, shrink_choices, ExploreConfig,
};
use agreement::fuzz::{audit_report, Violation};
use agreement::harness::ShardedScenario;

/// n=3 crash-mode PMP group, two commands — the hand-countable config
/// (mirrors the `explore` bench bin's `tiny_pmp`).
fn tiny_pmp() -> ShardedScenario {
    let mut sc = ShardedScenario::common_case(1, 3, 1, 7);
    sc.total_cmds = 2;
    sc.window = 1;
    sc.max_delays = 4_000;
    sc
}

/// The reintroduced duplicate-commit bug on a failover schedule, tuned
/// so the default schedule passes (mirrors the bin's `dedup`).
fn dedup() -> ShardedScenario {
    let mut sc = ShardedScenario::common_case(1, 3, 1, 33);
    sc.total_cmds = 4;
    sc.window = 1;
    sc.max_delays = 8_000;
    sc.crash_leaders = vec![(0, 9)];
    sc.announce = vec![(0, 1, 23)];
    sc.disable_session_dedup = true;
    sc
}

/// Explorer-found interleavings that each commit a command twice.
/// Distinct vectors, same root cause: the replica applies a retransmit
/// it should have deduplicated by session.
const DEDUP_CORPUS: &[&[usize]] = &[
    &[0, 0, 0, 0, 0, 0, 0, 0, 1],
    &[0, 0, 0, 0, 0, 0, 0, 0, 1, 2],
    &[0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1],
    &[0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 3],
];

#[test]
fn start_region_matches_hand_count() {
    let cfg = ExploreConfig {
        max_schedules: 10_000,
        max_depth: 4,
        prune: false,
    };
    let r = explore(&tiny_pmp(), &cfg);
    assert!(r.frontier_exhausted, "budget must cover the Start region");
    assert_eq!(r.schedules_run, 120, "5 actors at tick 0: 5*4*3*2 orders");
    assert_eq!(r.max_branching, 5, "first slate is the 5-way Start fan");
    assert_eq!(r.failures_found, 0);
    // Start order is pure bookkeeping: every ordering converges.
    assert_eq!(r.fingerprints.len(), 1);
}

#[test]
fn pruned_start_region_is_a_sound_reduction() {
    let naive = explore(
        &tiny_pmp(),
        &ExploreConfig {
            max_schedules: 10_000,
            max_depth: 4,
            prune: false,
        },
    );
    let pruned = explore(
        &tiny_pmp(),
        &ExploreConfig {
            max_schedules: 10_000,
            max_depth: 4,
            prune: true,
        },
    );
    assert!(pruned.frontier_exhausted);
    assert!(pruned.schedules_pruned > 0, "pruning must fire");
    let useful = pruned.schedules_run - pruned.schedules_redundant;
    assert!(
        naive.schedules_run >= 2 * useful,
        "pruning not load-bearing: {} naive vs {} useful",
        naive.schedules_run,
        useful
    );
    // Sound: the reduced frontier reaches every observable outcome.
    assert_eq!(pruned.fingerprints, naive.fingerprints);
}

#[test]
fn tiny_pmp_exhaustive_sweep_is_pinned_and_deterministic() {
    let cfg = ExploreConfig::default();
    let r = explore(&tiny_pmp(), &cfg);
    assert!(r.frontier_exhausted);
    assert_eq!(r.truncated_runs, 0);
    assert_eq!(r.failures_found, 0);
    assert_eq!(r.oracle_pass, r.schedules_run);
    // The full pruned sweep's size (naive: 3600 — checked in the CI
    // strict lane; pinned here so reduction regressions show as a diff).
    assert_eq!(r.schedules_run, 22);
    assert_eq!(r.fingerprints.len(), 1);
    let again = explore(&tiny_pmp(), &cfg);
    assert_eq!(again.schedules_run, r.schedules_run);
    assert_eq!(again.schedules_pruned, r.schedules_pruned);
    assert_eq!(again.choice_points, r.choice_points);
    assert_eq!(again.fingerprints, r.fingerprints);
}

#[test]
fn exploration_ignores_kernel_threading_knobs() {
    // explore() normalizes to the monolithic single-threaded kernel, so
    // the scenario's partitions/threads settings must not change what
    // the sweep sees.
    let base = explore(&tiny_pmp(), &ExploreConfig::default());
    let mut threaded = tiny_pmp();
    threaded.partitions = 2;
    threaded.threads = 4;
    let r = explore(&threaded, &ExploreConfig::default());
    assert_eq!(r.schedules_run, base.schedules_run);
    assert_eq!(r.schedules_pruned, base.schedules_pruned);
    assert_eq!(r.fingerprints, base.fingerprints);
}

#[test]
fn dedup_bug_is_schedule_dependent_and_found_exhaustively() {
    let sc = dedup();
    // The default schedule hides the bug: single-run testing passes.
    let default_run = run_schedule(&sc, &[]);
    assert!(
        audit_report(&sc, &default_run.report).is_ok(),
        "default schedule must pass for the bug to be schedule-dependent"
    );
    // Systematic exploration finds it, within an exhaustive sweep.
    let r = explore(&sc, &ExploreConfig::default());
    assert!(r.frontier_exhausted);
    assert_eq!(r.truncated_runs, 0);
    assert!(r.failures_found > 0, "injected dedup bug not found");
    assert!(r.oracle_pass > 0, "some schedules must still pass");
    assert!(
        r.failures.len() >= DEDUP_CORPUS.len(),
        "fewer stored failures than the pinned corpus"
    );
    for f in &r.failures {
        assert!(
            matches!(f.violation, Violation::Duplicated { .. }),
            "unexpected violation class: {}",
            f.violation
        );
    }
}

#[test]
fn dedup_corpus_replays_to_duplicate_commits() {
    let sc = dedup();
    for &choices in DEDUP_CORPUS {
        let run = run_schedule(&sc, choices);
        match audit_report(&sc, &run.report) {
            Err(Violation::Duplicated { .. }) => {}
            other => panic!("corpus vector {choices:?} no longer duplicates: {other:?}"),
        }
    }
}

#[test]
fn dedup_failure_shrinks_to_the_minimal_vector() {
    let sc = dedup();
    // Shrink a deliberately-longer failing vector from the corpus.
    let (min, v) = shrink_choices(&sc, DEDUP_CORPUS[2]);
    assert!(matches!(v, Violation::Duplicated { .. }));
    // One single non-default choice — flip the ninth multi-option
    // point — is enough to trigger the duplicate.
    assert_eq!(min, vec![0, 0, 0, 0, 0, 0, 0, 0, 1]);
}

#[test]
fn failing_schedule_renders_a_timeline() {
    let art = render_schedule_timeline(&dedup(), DEDUP_CORPUS[0], "dedup repro");
    assert!(art.events > 0, "timeline captured no events");
    assert!(art.html.contains("dedup repro"));
    assert!(!art.jsonl.is_empty());
    assert!(!art.chrome.is_empty());
}
