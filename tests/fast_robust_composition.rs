//! Experiment E7 — the Figure 6 composition, end to end: whatever breaks
//! (leader crash at any moment, Byzantine silence, asynchrony, equivocating
//! leaders), correct Fast & Robust processes agree, and any Cheap Quorum
//! decision binds the backup (Lemma 4.8 — asserted inside the actor on
//! every step, so these sweeps double as composition-lemma checks).

use agreement::adversary::CqEquivocatingLeader;
use agreement::fast_robust::{memory_actor, FastRobustActor};
use agreement::harness::{run_fast_robust, Scenario};
use agreement::types::{Msg, Pid, Value};
use sigsim::SigAuthority;
use simnet::{ActorId, DelayModel, Duration, Simulation, Time};

/// Crash the leader at every instant around the fast path's critical
/// window: before the write, mid-write, after decide, after helping.
#[test]
fn leader_crash_sweep_preserves_agreement() {
    for crash_at in 0..10u64 {
        for seed in 0..3u64 {
            let mut s = Scenario::common_case(3, 3, 1000 + seed);
            s.crash_procs = vec![(0, crash_at)];
            s.announce = vec![(60, 1)];
            s.max_delays = 30_000;
            let (report, _) = run_fast_robust(&s, 15);
            assert!(
                report.all_decided,
                "crash@{crash_at} seed {seed}: not all decided {report:?}"
            );
            assert!(report.agreement, "crash@{crash_at} seed {seed}: {report:?}");
            assert!(report.validity, "crash@{crash_at} seed {seed}: {report:?}");
        }
    }
}

/// If the leader's decision committed before the crash, the backup MUST
/// confirm that exact value (the composition lemma's observable face).
#[test]
fn committed_fast_decision_binds_the_backup() {
    // crash at 3 delays: the leader decided at 2, nobody replicated yet.
    let mut s = Scenario::common_case(3, 3, 4242);
    s.crash_procs = vec![(0, 3)];
    s.announce = vec![(60, 1)];
    s.max_delays = 30_000;
    let (report, _) = run_fast_robust(&s, 15);
    assert!(report.all_decided);
    for v in report.decisions.values() {
        assert_eq!(*v, Value(100), "backup diverged from the fast decision");
    }
}

/// Random asynchrony: timeouts misfire, panics cascade, still one value.
#[test]
fn jitter_sweep_many_seeds() {
    for seed in 0..12u64 {
        let mut s = Scenario::common_case(3, 3, 9000 + seed);
        s.delay = DelayModel::Uniform {
            lo: Duration::from_delays(1),
            hi: Duration::from_delays(7),
        };
        s.max_delays = 60_000;
        let (report, _) = run_fast_robust(&s, 10); // timeout far too tight
        assert!(report.all_decided, "seed {seed}: {report:?}");
        assert!(report.agreement, "seed {seed}: {report:?}");
        assert!(report.validity, "seed {seed}: {report:?}");
    }
}

/// Partial synchrony: chaos before GST, calm after; decisions after GST.
#[test]
fn partial_synchrony_recovers() {
    let mut s = Scenario::common_case(3, 3, 31337);
    s.delay = DelayModel::PartialSynchrony {
        lo: Duration::from_delays(1),
        hi: Duration::from_delays(20),
        gst: Time::from_delays(200),
        after: Duration::DELAY,
    };
    s.max_delays = 60_000;
    let (report, _) = run_fast_robust(&s, 12);
    assert!(report.all_decided, "{report:?}");
    assert!(report.agreement, "{report:?}");
}

/// An equivocating Byzantine leader under the full composition: followers
/// must converge on ONE value through the backup (or none at all) — and
/// weak validity does not apply (there IS a faulty process), but agreement
/// must hold.
#[test]
fn equivocating_leader_cannot_split_the_composition() {
    for seed in 0..6u64 {
        let (n, m) = (3u32, 3u32);
        let mut sim: Simulation<Msg> = Simulation::new(seed);
        let procs: Vec<Pid> = (0..n).map(ActorId).collect();
        let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
        let mut auth = SigAuthority::new(seed ^ 0xAB);
        let byz = auth.register(ActorId(0));
        sim.add(CqEquivocatingLeader::new(
            ActorId(0),
            mems.clone(),
            1 + (seed as usize % 2),
            Value(111),
            Value(222),
            byz,
        ));
        for i in 1..n {
            let signer = auth.register(ActorId(i));
            sim.add(FastRobustActor::new(
                ActorId(i),
                procs.clone(),
                mems.clone(),
                ActorId(0),
                Value(100 + i as u64),
                signer,
                auth.verifier(),
                Duration::from_delays(1),
                Duration::from_delays(15),
                Duration::from_delays(120),
            ));
        }
        for _ in 0..m {
            sim.add(memory_actor(&procs, ActorId(0)));
        }
        // Ω settles on a correct process for the backup.
        sim.announce_leader(Time::from_delays(80), &procs[1..], ActorId(1));
        sim.run_until(Time::from_delays(40_000), |s| {
            (1..n).all(|i| {
                s.actor_as::<FastRobustActor>(ActorId(i))
                    .unwrap()
                    .decision()
                    .is_some()
            })
        });
        let ds: Vec<Option<Value>> = (1..n)
            .map(|i| {
                sim.actor_as::<FastRobustActor>(ActorId(i))
                    .unwrap()
                    .decision()
            })
            .collect();
        let got: Vec<Value> = ds.iter().flatten().copied().collect();
        assert_eq!(got.len(), 2, "seed {seed}: {ds:?}");
        assert_eq!(got[0], got[1], "seed {seed}: SPLIT! {ds:?}");
    }
}

/// Failover latency curve (recovery delay as a function of crash time):
/// used by the failover bench; here we just pin the shape — later crashes
/// never make recovery *faster* than the timeout.
#[test]
fn failover_costs_at_least_the_timeout() {
    let timeout = 18u64;
    let mut s = Scenario::common_case(3, 3, 555);
    s.crash_procs = vec![(0, 1)]; // before the leader's write lands
    s.announce = vec![(40, 1)];
    s.max_delays = 30_000;
    let (report, _) = run_fast_robust(&s, timeout);
    assert!(report.all_decided);
    let first = report.first_decision_delays.unwrap();
    assert!(
        first >= timeout as f64,
        "decided at {first} < timeout {timeout}: fast path can't have fired"
    );
}

/// The common case again, through the public harness, pinning every
/// externally-visible number the paper quotes for the fast path.
#[test]
fn common_case_contract() {
    let (report, auth) = run_fast_robust(&Scenario::common_case(3, 3, 7), 60);
    assert!(report.all_decided && report.agreement && report.validity);
    assert_eq!(report.first_decision_delays, Some(2.0));
    // One signature before the fast decision is possible; the follower
    // copies/proofs add more afterwards, so just bound the total.
    assert!(auth.signatures_created() >= 1);
    // Nobody aborted: every process decided via the fast path.
    for i in 0..3u32 {
        let _ = i;
    }
}
