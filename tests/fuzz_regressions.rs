//! The fuzzer's regression corpus and self-tests.
//!
//! Three layers:
//!
//! 1. **Corpus** — scenarios in the exact shape the fuzzer's shrinker
//!    emits ([`agreement::fuzz::to_literal`]), each re-expressing a
//!    failure class this codebase actually had (or deliberately
//!    exercises end to end): failover re-submission duplicates, an
//!    equivocating leader racing a migration, receipt forgery caught by
//!    the takeover scan's provenance check, thread-count invariance on
//!    the partitioned kernel. Every corpus entry must pass the full
//!    deep oracle on the current tree.
//! 2. **Self-tests** — the fuzzer itself is deterministic: a seed pins
//!    its scenario, verdict, and shrink result.
//! 3. **Oracle demo** — a deliberately injected safety bug (session
//!    dedup disabled) is caught by the checker and shrunk to a minimal
//!    scenario of at most 3 faults, proving the loop finds and
//!    minimizes real violations rather than vacuously passing.

use agreement::fuzz::{
    self, check, check_deep, fault_count, generate, run_campaign, to_literal, DeepChecks,
    FuzzConfig, Violation,
};
use agreement::harness::ShardedScenario;
use agreement::sharded::{GroupMode, KeyRange, ScriptedMigration, WorkloadSpec};
use simnet::{DelayModel, Duration};

const DEEP: DeepChecks = DeepChecks {
    replay: true,
    thread_sweep: true,
};

/// The historical nasty case, fuzzer-style: mid-stream leader crashes in
/// two of four groups with a full window in flight force the router's
/// at-least-once re-submission — the schedule that made client-session
/// dedup necessary (commands would otherwise commit twice).
fn failover_resubmission_corpus() -> ShardedScenario {
    let mut sc = ShardedScenario::common_case(4, 3, 3, 33);
    sc.total_cmds = 300;
    sc.workload = WorkloadSpec::Zipf {
        keys: 1024,
        s: 0.99,
    };
    sc.window = 6;
    sc.batch = 2;
    sc.crash_leaders = vec![(0, 15), (2, 31)];
    sc.announce = vec![(0, 1, 70), (2, 1, 90)];
    sc.max_delays = 20_000;
    sc
}

#[test]
fn corpus_failover_resubmission_duplicates() {
    let sc = failover_resubmission_corpus();
    let r = check_deep(&sc, DEEP).expect("corpus scenario regressed");
    assert!(
        r.duplicates_suppressed > 0,
        "the schedule no longer forces re-submissions — the corpus entry \
         stopped exercising the dedup path: {r:?}"
    );
}

#[test]
fn corpus_equivocating_leader_races_migration() {
    // An equivocating Byzantine leader is also the source of a scripted
    // migration; the seal first goes to the liar and must be recovered
    // through failover re-submission (tests/byzantine_determinism.rs
    // pins this schedule in detail — here it rides the fuzzer's oracle).
    let mut sc = ShardedScenario::common_case(4, 3, 3, 59);
    sc.total_cmds = 120;
    sc.window = 4;
    sc.batch = 2;
    sc.group_modes = vec![GroupMode::Byzantine; 4];
    sc.byz_silent = vec![(0, 2)];
    sc.byz_equivocators = vec![(1, 0)];
    sc.announce = vec![(1, 1, 80)];
    sc.migrations = vec![ScriptedMigration {
        at_delays: 40,
        range: KeyRange { lo: 1024, hi: 1536 },
        to: 3,
    }];
    sc.workload = WorkloadSpec::Uniform { keys: 4096 };
    sc.max_delays = 40_000;
    let r = check_deep(&sc, DEEP).expect("corpus scenario regressed");
    assert_eq!(r.migrations_completed, 1);
    assert!(r.equivocations_blocked > 0 || r.byz_unconfirmed_claims > 0);
}

#[test]
fn corpus_forged_receipt_blocked_at_takeover() {
    // A receipt-forging follower colludes with its group's initial
    // leader; an Ω announcement later hands the group to replica 1,
    // whose takeover scan must reject the forged receipt by provenance
    // (the end-to-end form of the unit test in `smr::byz`).
    let mut sc = ShardedScenario::common_case(2, 3, 3, 101);
    sc.total_cmds = 80;
    sc.window = 4;
    sc.group_modes = vec![GroupMode::Byzantine, GroupMode::Byzantine];
    sc.byz_receipt_forgers = vec![(0, 2)];
    sc.announce = vec![(0, 1, 60)];
    sc.max_delays = 40_000;
    let r = check_deep(&sc, DEEP).expect("corpus scenario regressed");
    assert!(
        r.byz_receipts_rejected > 0,
        "the takeover scan never saw (or never rejected) the forged \
         receipt: {r:?}"
    );
}

#[test]
fn corpus_partitioned_jittered_crash_sweep() {
    // Jittered links + leader crash + the partitioned kernel: the deep
    // oracle's thread sweep re-runs this at 2 and 4 workers and demands
    // bit-identical reports.
    let mut sc = ShardedScenario::common_case(4, 3, 3, 47);
    sc.total_cmds = 200;
    sc.window = 6;
    sc.delay = DelayModel::Uniform {
        lo: Duration::from_delays(1),
        hi: Duration::from_delays(3),
    };
    sc.partitions = 4;
    sc.crash_leaders = vec![(1, 20)];
    sc.announce = vec![(1, 1, 80)];
    sc.max_delays = 40_000;
    check_deep(&sc, DEEP).expect("corpus scenario regressed");
}

#[test]
fn fuzzer_is_deterministic_end_to_end() {
    // Scenario: a seed pins the generated scenario exactly.
    for seed in [0u64, 17, 4242] {
        assert_eq!(generate(seed), generate(seed), "seed {seed}");
    }
    // Verdict + coverage: a whole campaign replays bit-for-bit.
    let cfg = FuzzConfig {
        start_seed: 0,
        cases: 40,
        shrink: true,
        replay_every: 8,
        sweep_every: 8,
    };
    let a = run_campaign(&cfg);
    let b = run_campaign(&cfg);
    assert_eq!(a, b, "same campaign, different outcome");
    assert!(a.failures.is_empty(), "campaign found violations: {a:?}");
    // Shrink: the same failing scenario shrinks to the same minimum.
    let bugged = injected_bug_scenario();
    let (s1, v1) = fuzz::shrink(&bugged);
    let (s2, v2) = fuzz::shrink(&bugged);
    assert_eq!((s1, v1), (s2, v2), "shrinking is nondeterministic");
}

/// The oracle-demo scenario: the failover re-submission schedule with
/// session dedup deliberately disabled — the historical duplicate-commit
/// bug reintroduced on purpose.
fn injected_bug_scenario() -> ShardedScenario {
    let mut sc = failover_resubmission_corpus();
    sc.disable_session_dedup = true;
    sc
}

#[test]
fn injected_dedup_bug_is_caught_and_shrunk() {
    let sc = injected_bug_scenario();
    let violation = check(&sc).expect_err("oracle missed the injected duplicate-commit bug");
    assert!(
        matches!(violation, Violation::Duplicated { .. }),
        "expected a duplicated command, got: {violation}"
    );
    let (shrunk, shrunk_violation) = fuzz::shrink(&sc);
    assert!(
        matches!(shrunk_violation, Violation::Duplicated { .. }),
        "shrinking wandered off the duplicate: {shrunk_violation}"
    );
    assert!(
        shrunk.disable_session_dedup,
        "the shrinker removed the injected bug itself"
    );
    assert!(
        fault_count(&shrunk) <= 3,
        "minimal scenario still has {} faults: {shrunk:?}",
        fault_count(&shrunk)
    );
    // The emitted repro is a self-contained pasteable expression naming
    // the injection switch.
    let repro = to_literal(&shrunk);
    assert!(repro.contains("disable_session_dedup = true"), "{repro}");
    assert!(repro.starts_with('{') && repro.ends_with('}'), "{repro}");
}

#[test]
fn clean_tree_passes_a_spot_campaign() {
    // A second, disjoint seed range from the CI gate's, so local runs
    // and CI together cover more of the space.
    let cfg = FuzzConfig {
        start_seed: 5_000,
        cases: 64,
        shrink: false,
        replay_every: 16,
        sweep_every: 16,
    };
    let r = run_campaign(&cfg);
    assert!(r.failures.is_empty(), "violations found: {:?}", r.failures);
    assert!(r.commands_committed > 0);
}
