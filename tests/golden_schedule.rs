//! Golden-schedule regression for the kernel overhaul.
//!
//! Two layers of protection:
//!
//! 1. **Recorded fixtures** — seeded common-case runs must keep producing
//!    exactly these decision times, message counts and memory-op counts.
//!    If a kernel change shifts any schedule, these fail before anything
//!    subtler does.
//! 2. **Differential runs** — the `Legacy` kernel profile is the faithful
//!    pre-overhaul implementation (binary-heap queue, eager allocations,
//!    tombstone timer set). Every scenario here must produce identical
//!    virtual-time results — decisions, metrics, and trace lines — on both
//!    kernels, including under jittered (RNG-driven) delays, crashes and
//!    failover, and for the SMR log at `batch = 1` (the batching knob's
//!    compatibility mode).

use agreement::harness::{run_fast_robust, run_mp_paxos, run_protected, run_smr, Scenario};
use agreement::protected::memory_actor;
use agreement::smr::SmrNode;
use agreement::types::{Msg, Value};
use simnet::{ActorId, DelayModel, Duration, KernelProfile, Simulation, Time};

#[test]
fn golden_common_case_fixtures() {
    let s = Scenario::common_case(3, 3, 42);

    let mp = run_mp_paxos(&s);
    assert_eq!(mp.first_decision_delays, Some(2.0));
    assert_eq!(mp.messages, 6);
    assert_eq!(mp.mem_ops, 0);
    assert!(mp.all_decided && mp.agreement && mp.validity);

    let pmp = run_protected(&s);
    assert_eq!(pmp.first_decision_delays, Some(2.0));
    assert_eq!(pmp.messages, 8);
    assert_eq!(pmp.mem_ops, 3);
    assert!(pmp.all_decided && pmp.agreement && pmp.validity);

    let (fr, _) = run_fast_robust(&s, 60);
    assert_eq!(fr.first_decision_delays, Some(2.0));
    assert!(fr.all_decided && fr.agreement && fr.validity);
}

#[test]
fn golden_smr_schedule_fixture() {
    let mut s = Scenario::common_case(3, 3, 7);
    s.max_delays = 100;
    let r = run_smr(&s, 10);
    assert_eq!(r.entries, 10);
    assert!(r.logs_agree);
    // One replicated write per entry: slot i decided at 2·(i+1) delays.
    let expected: Vec<f64> = (1..=10).map(|i| 2.0 * i as f64).collect();
    assert_eq!(r.decided_at_delays, expected);
    assert_eq!(r.log, (0..10).map(|c| Value(1000 + c)).collect::<Vec<_>>());
}

/// Every scenario-level quantity the harness reports must be identical on
/// both kernels.
fn assert_profiles_agree(build: impl Fn(KernelProfile) -> Scenario) {
    let opt = build(KernelProfile::Optimized);
    let leg = build(KernelProfile::Legacy);
    for (a, b) in [
        (run_mp_paxos(&opt), run_mp_paxos(&leg)),
        (run_protected(&opt), run_protected(&leg)),
        (run_fast_robust(&opt, 60).0, run_fast_robust(&leg, 60).0),
    ] {
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.first_decision_delays, b.first_decision_delays);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.mem_ops, b.mem_ops);
        assert_eq!(a.elapsed_delays, b.elapsed_delays);
        assert_eq!(a.all_decided, b.all_decided);
    }
}

#[test]
fn kernels_agree_on_common_case() {
    for seed in [1, 7, 42, 1234] {
        assert_profiles_agree(|kernel| {
            let mut s = Scenario::common_case(3, 3, seed);
            s.kernel = kernel;
            s
        });
    }
}

#[test]
fn kernels_agree_under_jittered_delays() {
    // Uniform link jitter drives the seeded RNG on every send: identical
    // results require identical dispatch order AND identical RNG draw
    // order on both kernels.
    for seed in [3, 9, 77] {
        assert_profiles_agree(|kernel| {
            let mut s = Scenario::common_case(3, 3, seed);
            s.delay = DelayModel::Uniform {
                lo: Duration::from_delays(1),
                hi: Duration::from_delays(4),
            };
            s.max_delays = 3_000;
            s.kernel = kernel;
            s
        });
    }
}

#[test]
fn kernels_agree_under_crashes_and_failover() {
    for seed in [5, 11] {
        assert_profiles_agree(|kernel| {
            let mut s = Scenario::common_case(4, 3, seed);
            s.crash_procs = vec![(0, 6)];
            s.crash_mems = vec![(2, 9)];
            s.announce = vec![(15, 1)];
            s.max_delays = 2_000;
            s.kernel = kernel;
            s
        });
    }
}

#[test]
fn kernels_agree_on_smr_batch1_and_traces_match() {
    // Full SMR cluster with tracing on: both kernels must produce the
    // same decision times AND byte-identical trace dumps.
    let run = |profile: KernelProfile| {
        let n = 3u32;
        let m = 3u32;
        let mut sim: Simulation<Msg> = Simulation::with_profile(11, profile);
        sim.enable_trace(100_000);
        let procs: Vec<ActorId> = (0..n).map(ActorId).collect();
        let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
        for i in 0..n {
            let workload: Vec<Value> = (0..12).map(|c| Value(100 * (i as u64 + 1) + c)).collect();
            sim.add(SmrNode::new(
                ActorId(i),
                procs.clone(),
                mems.clone(),
                ActorId(0),
                workload,
                1,
                Duration::from_delays(20),
            ));
        }
        for _ in 0..m {
            sim.add(memory_actor(ActorId(0)));
        }
        // A mid-run crash of one memory exercises the drop-to-crashed
        // trace path on both kernels.
        sim.crash_at(mems[2], Time::from_delays(9));
        sim.run_to_quiescence(Time::from_delays(60));
        let leader = sim.actor_as::<SmrNode>(ActorId(0)).unwrap();
        (
            leader.log(),
            leader.decided_at().to_vec(),
            sim.metrics().messages_sent,
            sim.metrics().mem_ops(),
            sim.trace().dump(),
        )
    };
    let (log_o, decided_o, msgs_o, ops_o, trace_o) = run(KernelProfile::Optimized);
    let (log_l, decided_l, msgs_l, ops_l, trace_l) = run(KernelProfile::Legacy);
    assert!(!log_o.is_empty());
    assert_eq!(log_o, log_l);
    assert_eq!(decided_o, decided_l);
    assert_eq!(msgs_o, msgs_l);
    assert_eq!(ops_o, ops_l);
    assert_eq!(trace_o, trace_l);
    assert!(trace_o.contains("CRASH"));
    assert!(trace_o.contains("dropped msg (crashed)"));
}

#[test]
fn smr_batch1_wire_path_is_unchanged() {
    // batch=1 must take the exact pre-batching wire path: same message
    // count, same mem-op count, same per-entry decision times as the
    // recorded fixture, on both kernels.
    for kernel in [KernelProfile::Optimized, KernelProfile::Legacy] {
        let mut s = Scenario::common_case(3, 3, 7);
        s.max_delays = 100;
        s.kernel = kernel;
        let r = run_smr(&s, 10);
        assert_eq!(r.entries, 10, "{kernel:?}");
        let expected: Vec<f64> = (1..=10).map(|i| 2.0 * i as f64).collect();
        assert_eq!(r.decided_at_delays, expected, "{kernel:?}");
        // 10 entries × 3 memories, one write each; no extra ops.
        assert_eq!(r.mem_ops, 30, "{kernel:?}");
    }
}
