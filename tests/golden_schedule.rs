//! Golden-schedule regression pins for the kernel.
//!
//! Two layers of protection:
//!
//! 1. **Recorded fixtures** — seeded runs (common-case, jittered,
//!    crash-and-failover) must keep producing exactly these decision
//!    times, message counts, memory-op counts, and trace dumps. If a
//!    kernel change shifts any schedule, these fail before anything
//!    subtler does. The pre-overhaul heap kernel once served as a live
//!    differential reference (the `Legacy` profile); it is retired —
//!    these pins, plus the scenario fuzzer's seed ranges
//!    (`tests/fuzz_regressions.rs`), now carry that role.
//! 2. **Repetition** — pinned scenarios are also run twice in fresh
//!    kernels, guarding the determinism contract itself (a pin could
//!    stay green by accident if the schedule were merely *usually* the
//!    recorded one).

use agreement::harness::{
    run_fast_robust, run_mp_paxos, run_protected, run_smr, RunReport, Scenario,
};
use agreement::protected::memory_actor;
use agreement::smr::SmrNode;
use agreement::types::{Msg, Value};
use simnet::{ActorId, DelayModel, Duration, Simulation, Time};

#[test]
fn golden_common_case_fixtures() {
    let s = Scenario::common_case(3, 3, 42);

    let mp = run_mp_paxos(&s);
    assert_eq!(mp.first_decision_delays, Some(2.0));
    assert_eq!(mp.messages, 6);
    assert_eq!(mp.mem_ops, 0);
    assert!(mp.all_decided && mp.agreement && mp.validity);

    let pmp = run_protected(&s);
    assert_eq!(pmp.first_decision_delays, Some(2.0));
    assert_eq!(pmp.messages, 8);
    assert_eq!(pmp.mem_ops, 3);
    assert!(pmp.all_decided && pmp.agreement && pmp.validity);

    let (fr, _) = run_fast_robust(&s, 60);
    assert_eq!(fr.first_decision_delays, Some(2.0));
    assert!(fr.all_decided && fr.agreement && fr.validity);
}

#[test]
fn golden_smr_schedule_fixture() {
    let mut s = Scenario::common_case(3, 3, 7);
    s.max_delays = 100;
    let r = run_smr(&s, 10);
    assert_eq!(r.entries, 10);
    assert!(r.logs_agree);
    // One replicated write per entry: slot i decided at 2·(i+1) delays.
    let expected: Vec<f64> = (1..=10).map(|i| 2.0 * i as f64).collect();
    assert_eq!(r.decided_at_delays, expected);
    assert_eq!(r.log, (0..10).map(|c| Value(1000 + c)).collect::<Vec<_>>());
}

/// One run's schedule fingerprint — everything in the report a schedule
/// shift would move, in tenth-of-a-delay units so the pins are integers.
type Fingerprint = (Option<u64>, u64, u64, u64);

fn fingerprint(r: &RunReport) -> Fingerprint {
    (
        r.first_decision_delays.map(|d| (d * 10.0).round() as u64),
        r.messages,
        r.mem_ops,
        (r.elapsed_delays * 10.0).round() as u64,
    )
}

/// Fingerprints of the three pinned protocols on one scenario, asserting
/// every run decided correctly before anything is compared.
fn pins_for(s: &Scenario) -> [Fingerprint; 3] {
    let mp = run_mp_paxos(s);
    let pmp = run_protected(s);
    let (fr, _) = run_fast_robust(s, 60);
    for r in [&mp, &pmp, &fr] {
        assert!(r.all_decided && r.agreement, "{r:?}");
    }
    [fingerprint(&mp), fingerprint(&pmp), fingerprint(&fr)]
}

#[test]
fn golden_jittered_schedules_are_pinned() {
    // Uniform link jitter drives the seeded RNG on every send, so these
    // pins freeze dispatch order AND RNG draw order. Recorded on the
    // wheel kernel; `[mp_paxos, protected, fast_robust]` per seed.
    let recorded: [(u64, [Fingerprint; 3]); 3] = [
        (
            3,
            [
                (Some(48), 6, 0, 76),
                (Some(49), 8, 3, 78),
                (Some(54), 167, 84, 516),
            ],
        ),
        (
            9,
            [
                (Some(39), 6, 0, 53),
                (Some(42), 8, 3, 65),
                (Some(47), 180, 90, 552),
            ],
        ),
        (
            77,
            [
                (Some(47), 6, 0, 72),
                (Some(42), 8, 3, 79),
                (Some(67), 172, 87, 495),
            ],
        ),
    ];
    for (seed, expect) in recorded {
        let mut s = Scenario::common_case(3, 3, seed);
        s.delay = DelayModel::Uniform {
            lo: Duration::from_delays(1),
            hi: Duration::from_delays(4),
        };
        s.max_delays = 3_000;
        let got = pins_for(&s);
        assert_eq!(got, expect, "seed {seed}: schedule diverged from pin");
        assert_eq!(pins_for(&s), got, "seed {seed}: rerun diverged");
    }
}

#[test]
fn golden_crash_failover_schedules_are_pinned() {
    // A process crash, a memory crash, and an Ω re-announcement: the
    // failover path's schedule, frozen per seed.
    let recorded: [(u64, [Fingerprint; 3]); 2] = [
        (
            5,
            [
                (Some(20), 9, 0, 30),
                (Some(20), 9, 3, 30),
                (Some(20), 1620, 1224, 2600),
            ],
        ),
        (
            11,
            [
                (Some(20), 9, 0, 30),
                (Some(20), 9, 3, 30),
                (Some(20), 1620, 1224, 2600),
            ],
        ),
    ];
    for (seed, expect) in recorded {
        let mut s = Scenario::common_case(4, 3, seed);
        s.crash_procs = vec![(0, 6)];
        s.crash_mems = vec![(2, 9)];
        s.announce = vec![(15, 1)];
        s.max_delays = 2_000;
        let got = pins_for(&s);
        assert_eq!(got, expect, "seed {seed}: schedule diverged from pin");
        assert_eq!(pins_for(&s), got, "seed {seed}: rerun diverged");
    }
}

#[test]
fn golden_smr_trace_fixture() {
    // Full SMR cluster with tracing on and a mid-run memory crash: the
    // decision schedule, message/mem-op counts, and the byte-exact trace
    // dump are all pinned (and must reproduce across fresh kernels).
    let run = || {
        let n = 3u32;
        let m = 3u32;
        let mut sim: Simulation<Msg> = Simulation::new(11);
        sim.enable_trace(100_000);
        let procs: Vec<ActorId> = (0..n).map(ActorId).collect();
        let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
        for i in 0..n {
            let workload: Vec<Value> = (0..12).map(|c| Value(100 * (i as u64 + 1) + c)).collect();
            sim.add(SmrNode::new(
                ActorId(i),
                procs.clone(),
                mems.clone(),
                ActorId(0),
                workload,
                1,
                Duration::from_delays(20),
            ));
        }
        for _ in 0..m {
            sim.add(memory_actor(ActorId(0)));
        }
        // A mid-run crash of one memory exercises the drop-to-crashed
        // trace path.
        sim.crash_at(mems[2], Time::from_delays(9));
        sim.run_to_quiescence(Time::from_delays(60));
        let leader = sim.actor_as::<SmrNode>(ActorId(0)).unwrap();
        (
            leader.log(),
            leader.decided_at().to_vec(),
            sim.metrics().messages_sent,
            sim.metrics().mem_ops(),
            sim.trace().dump(),
        )
    };
    let (log, decided, msgs, ops, trace) = run();
    assert_eq!(log, (0..12).map(|c| Value(100 + c)).collect::<Vec<_>>());
    assert_eq!(decided.len(), 12);
    assert_eq!((msgs, ops), (81, 36), "trace fixture schedule shifted");
    assert!(trace.contains("CRASH"));
    assert!(trace.contains("dropped msg (crashed)"));
    let (log2, decided2, msgs2, ops2, trace2) = run();
    assert_eq!((log, decided, msgs, ops), (log2, decided2, msgs2, ops2));
    assert_eq!(trace, trace2, "trace dumps diverged across runs");
}

#[test]
fn smr_batch1_wire_path_is_unchanged() {
    // batch=1 must take the exact pre-batching wire path: same message
    // count, same mem-op count, same per-entry decision times as the
    // recorded fixture.
    let mut s = Scenario::common_case(3, 3, 7);
    s.max_delays = 100;
    let r = run_smr(&s, 10);
    assert_eq!(r.entries, 10);
    let expected: Vec<f64> = (1..=10).map(|i| 2.0 * i as f64).collect();
    assert_eq!(r.decided_at_delays, expected);
    // 10 entries × 3 memories, one write each; no extra ops.
    assert_eq!(r.mem_ops, 30);
}
