//! Experiment E5 — Theorem 6.1 as an executable artifact: the adversarial
//! schedule kills every 2-deciding static-permission algorithm, and
//! dynamic permissions (Protected Memory Paxos) survive the identical
//! schedule.

use agreement::lower_bound::{run_protected_contrast, run_strawman_demo};

/// The strawman is genuinely 2-deciding... and therefore breakable.
#[test]
fn theorem_6_1_schedule_breaks_every_seed() {
    for seed in 0..20 {
        let report = run_strawman_demo(seed);
        assert!(
            report.agreement_violated,
            "seed {seed}: the adversary failed to split the strawman: {report:?}"
        );
        assert_eq!(
            report.first_decision_delays,
            Some(2.0),
            "seed {seed}: the strawman stopped being 2-deciding"
        );
    }
}

/// Dynamic permissions close the gap: same adversary, no violation, still
/// lively.
#[test]
fn protected_memory_paxos_survives_every_seed() {
    for seed in 0..20 {
        let report = run_protected_contrast(seed);
        assert!(!report.agreement_violated, "seed {seed}: {report:?}");
        assert!(
            report.decisions.iter().any(|(_, d)| d.is_some()),
            "seed {seed}: nobody decided: {report:?}"
        );
    }
}

/// The two sides of the theorem, juxtaposed (the bench prints this).
#[test]
fn the_contrast_in_one_place() {
    let broken = run_strawman_demo(1);
    let safe = run_protected_contrast(1);
    assert!(broken.agreement_violated && !safe.agreement_violated);
}
