//! Online key-range migration, end to end.
//!
//! The epoch-flip contract under test (see
//! `agreement::sharded::rebalance`):
//!
//! * **No lost commands** — every client command commits despite ranges
//!   moving mid-run (`all_committed`).
//! * **No duplicates** — no client command id appears twice across the
//!   whole service's logs (seal/install control entries excluded).
//! * **Per-key order across the flip** — a migrated key's commands
//!   commit in submission (id) order: its source-group commits all
//!   precede the seal entry, its destination-group commits all follow
//!   the install entry.
//! * **Determinism** — `(seed, partitions)` pins migrating runs
//!   bit-for-bit across 1/2/4 worker threads, and migrations compose
//!   with leader crashes in the source group.

use agreement::harness::{run_sharded, ShardedRunReport, ShardedScenario};
use agreement::sharded::rebalance::{decode_ctrl, CtrlEntry};
use agreement::sharded::{
    sample_keys, KeyRange, RebalanceConfig, RoutingTable, ScriptedMigration, WorkloadSpec,
};

/// The per-id key map of a scenario's command stream (index 0 unused).
fn keys_of(sc: &ShardedScenario) -> Vec<u64> {
    let mut keys = vec![u64::MAX];
    keys.extend(sample_keys(&sc.workload, sc.seed, sc.total_cmds));
    keys
}

/// Client command ids of one group log, in log order, with the positions
/// of the seal/install entries of migration `mig`.
fn log_ids_and_ctrl(
    log: &[agreement::types::Value],
    mig: u64,
) -> (Vec<u64>, Option<usize>, Option<usize>) {
    let mut ids = Vec::new();
    let (mut seal_pos, mut install_pos) = (None, None);
    for (pos, &v) in log.iter().enumerate() {
        match decode_ctrl(v) {
            Some(CtrlEntry::Seal { mig: m }) if m == mig => seal_pos = Some(pos),
            Some(CtrlEntry::Install { mig: m }) if m == mig => install_pos = Some(pos),
            Some(_) => {}
            None => {
                if v.0 != u64::MAX {
                    ids.push(v.0);
                }
            }
        }
    }
    (ids, seal_pos, install_pos)
}

/// Asserts the service-wide exactly-once + per-key-order contract for a
/// finished run with one migration of `range` from `from` to `to`.
fn assert_flip_safety(
    sc: &ShardedScenario,
    r: &ShardedRunReport,
    range: KeyRange,
    from: usize,
    to: usize,
) {
    assert!(r.all_committed, "lost commands: {r:?}");
    assert!(r.all_logs_agree && r.no_cross_group_leak);
    assert_eq!(r.migrations_completed, 1);
    assert_eq!(r.routing_table_version, 1);
    assert_eq!(r.cross_epoch_commits, 0, "schedule raced the epoch flip");
    let keys = keys_of(sc);

    // Exactly-once across the whole service.
    let mut seen = std::collections::HashSet::new();
    for group in &r.groups {
        for &v in &group.log {
            if decode_ctrl(v).is_none() && v.0 != u64::MAX {
                assert!(seen.insert(v.0), "command {} committed twice", v.0);
            }
        }
    }
    assert_eq!(seen.len(), sc.total_cmds, "committed ids != workload");

    // The seal ends the range's history at the source; the install starts
    // it at the destination.
    let (src_ids, seal, _) = log_ids_and_ctrl(&r.groups[from].log, 0);
    let (dst_ids, _, install) = log_ids_and_ctrl(&r.groups[to].log, 0);
    let seal = seal.expect("seal entry missing from the source log");
    let install = install.expect("install entry missing from the destination log");
    for (pos, &v) in r.groups[from].log.iter().enumerate() {
        if decode_ctrl(v).is_none() && v.0 != u64::MAX && range.contains(keys[v.0 as usize]) {
            assert!(pos < seal, "range command {} committed after the seal", v.0);
        }
    }
    for (pos, &v) in r.groups[to].log.iter().enumerate() {
        if decode_ctrl(v).is_none() && v.0 != u64::MAX && range.contains(keys[v.0 as usize]) {
            assert!(
                pos > install,
                "range command {} committed before the install",
                v.0
            );
        }
    }

    // Per-key order across the flip: source history then destination
    // history, ids strictly increasing (ids are assigned in submission
    // order, and a single key's commands never reorder).
    let mut per_key: std::collections::BTreeMap<u64, Vec<u64>> = std::collections::BTreeMap::new();
    for &id in src_ids.iter().chain(&dst_ids) {
        if range.contains(keys[id as usize]) {
            per_key.entry(keys[id as usize]).or_default().push(id);
        }
    }
    for (key, ids) in per_key {
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "key {key} commands reordered across the epoch flip: {ids:?}"
        );
    }
}

/// G=4 uniform closed-loop scenario; group 0 initially owns keys
/// [0, 1024) under the even version-0 table.
fn migration_scenario(seed: u64) -> (ShardedScenario, KeyRange) {
    let mut sc = ShardedScenario::common_case(4, 3, 3, seed);
    sc.total_cmds = 400;
    sc.window = 8;
    sc.batch = 4;
    sc.max_delays = 20_000;
    let range = KeyRange { lo: 0, hi: 512 };
    sc.migrations = vec![ScriptedMigration {
        at_delays: 40,
        range,
        to: 2,
    }];
    (sc, range)
}

#[test]
fn scripted_migration_is_safe_and_exactly_once() {
    let (sc, range) = migration_scenario(17);
    let r = run_sharded(&sc);
    assert!(r.rerouted_commands > 0, "nothing moved: {r:?}");
    assert_eq!(r.migration_windows_ticks.len(), 1);
    assert!(r.migration_windows_ticks[0] > 0);
    assert_flip_safety(&sc, &r, range, 0, 2);
    // The flip actually moved load: the destination committed its own
    // table share plus every re-routed command, the source lost exactly
    // that many.
    let table = RoutingTable::even(sc.workload.key_space(), sc.groups);
    let own = agreement::sharded::partition_with_table(
        &sc.workload,
        sc.seed,
        sc.total_cmds,
        &table,
        sc.groups,
    );
    let moved = r.rerouted_commands as usize;
    assert_eq!(r.groups[2].committed, own.backlogs[2].len() + moved);
    assert_eq!(r.groups[0].committed, own.backlogs[0].len() - moved);
}

#[test]
fn migration_racing_source_leader_crash_still_completes() {
    // The seal is submitted at t=40 to group 0's leader, which crashes
    // moments later with the seal (and a window of commands) in flight;
    // Ω elects the group's second replica at t=120. The re-submission
    // path must carry the control entry to the new leader, and the
    // takeover scan must hand it whatever the crashed leader had already
    // committed — the migration completes and the flip stays safe.
    let (mut sc, range) = migration_scenario(23);
    sc.crash_leaders = vec![(0, 42)];
    sc.announce = vec![(0, 1, 120)];
    let r = run_sharded(&sc);
    assert_flip_safety(&sc, &r, range, 0, 2);
    assert!(
        r.groups[0].max_commit_gap_ticks >= 50 * simnet::TICKS_PER_DELAY,
        "no failover stall visible: {:?}",
        r.groups[0].max_commit_gap_ticks
    );
}

#[test]
fn migrating_runs_are_thread_count_invariant() {
    // Determinism with migrations in flight: 4 kernel partitions, the
    // migration's source and destination on different partitions, plus a
    // leader crash in a third group — 1, 2 and 4 worker threads must
    // produce the bit-identical report.
    let (mut sc, _) = migration_scenario(31);
    sc.crash_leaders = vec![(3, 25)];
    sc.announce = vec![(3, 1, 90)];
    sc.partitions = 4;
    let reports: Vec<ShardedRunReport> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let mut s = sc.clone();
            s.threads = threads;
            run_sharded(&s)
        })
        .collect();
    assert!(reports[0].all_committed, "{:?}", reports[0]);
    assert_eq!(reports[0].migrations_completed, 1);
    assert_eq!(reports[0], reports[1], "2 threads changed the run");
    assert_eq!(reports[0], reports[2], "4 threads changed the run");
    // And the monolithic kernel agrees on everything but queue shape.
    let mut mono = sc.clone();
    mono.partitions = 1;
    let m = run_sharded(&mono);
    assert_eq!(m.committed, reports[0].committed);
    assert_eq!(m.migrations_completed, reports[0].migrations_completed);
    assert_eq!(m.routing_table_version, reports[0].routing_table_version);
}

#[test]
fn queued_migrations_apply_in_order() {
    // Two scripted migrations triggered back to back: the second waits
    // for the first to flip, then runs; both land, version reaches 2.
    // (The workload is sized to outlast both flips — a run that drains
    // first simply ends with the trailing migration unfinished.)
    let (mut sc, _) = migration_scenario(41);
    sc.total_cmds = 900;
    sc.migrations = vec![
        ScriptedMigration {
            at_delays: 40,
            range: KeyRange { lo: 0, hi: 256 },
            to: 2,
        },
        ScriptedMigration {
            at_delays: 41,
            range: KeyRange { lo: 1024, hi: 1100 },
            to: 3,
        },
    ];
    let r = run_sharded(&sc);
    assert!(r.all_committed && r.all_logs_agree && r.no_cross_group_leak);
    assert_eq!(r.migrations_completed, 2);
    assert_eq!(r.routing_table_version, 2);
    assert_eq!(r.migration_windows_ticks.len(), 2);
}

#[test]
fn static_range_routing_follows_the_table() {
    // range_routing alone (no migrations): the even table is the whole
    // story, and every commit lands in its table group.
    let mut sc = ShardedScenario::common_case(4, 3, 3, 13);
    sc.total_cmds = 300;
    sc.window = 8;
    sc.range_routing = true;
    let r = run_sharded(&sc);
    assert!(r.all_committed && r.all_logs_agree && r.no_cross_group_leak);
    assert_eq!(r.migrations_completed, 0);
    assert_eq!(r.routing_table_version, 0);
    let table = RoutingTable::even(sc.workload.key_space(), sc.groups);
    let keys = keys_of(&sc);
    for (g, group) in r.groups.iter().enumerate() {
        for &v in &group.log {
            if decode_ctrl(v).is_none() && v.0 != u64::MAX {
                assert_eq!(
                    table.group_of(keys[v.0 as usize]),
                    g,
                    "command {} off its table group",
                    v.0
                );
            }
        }
    }
}

#[test]
fn auto_rebalance_splits_the_hot_range_and_recovers_throughput() {
    // Zipf head ranks are contiguous keys, so the even range table pins
    // the whole head onto group 0 — the adversarial case for range
    // partitioning. The policy must detect it and migrate hot keys away,
    // beating the static range table on completion time.
    let mut sc = ShardedScenario::common_case(4, 3, 3, 7);
    sc.total_cmds = 2_000;
    sc.window = 12;
    sc.batch = 4;
    sc.max_delays = 100_000;
    sc.workload = WorkloadSpec::Zipf {
        keys: 4096,
        s: 0.99,
    };
    sc.range_routing = true;
    let static_run = run_sharded(&sc);
    assert!(static_run.all_committed, "{static_run:?}");

    let mut auto = sc.clone();
    auto.rebalance = Some(RebalanceConfig {
        check_every_delays: 100,
        cooldown_delays: 50,
        hot_group_permille: 400,
        hot_key_permille: 100,
        min_window_commits: 64,
        ..RebalanceConfig::default()
    });
    let r = run_sharded(&auto);
    assert!(r.all_committed, "{r:?}");
    assert!(r.all_logs_agree && r.no_cross_group_leak);
    assert!(r.migrations_completed >= 1, "policy never triggered: {r:?}");
    assert_eq!(r.routing_table_version as usize, r.migrations_completed);
    assert!(
        r.elapsed_delays < static_run.elapsed_delays,
        "auto-rebalance did not beat static range routing: {} vs {}",
        r.elapsed_delays,
        static_run.elapsed_delays
    );
    // Exactly-once still holds with policy-triggered migrations.
    let mut seen = std::collections::HashSet::new();
    for group in &r.groups {
        for &v in &group.log {
            if decode_ctrl(v).is_none() && v.0 != u64::MAX {
                assert!(seen.insert(v.0), "command {} committed twice", v.0);
            }
        }
    }
    // Reproducible: the same auto-rebalancing run is bit-identical.
    let again = run_sharded(&auto);
    assert_eq!(r, again, "auto-rebalancing run is not deterministic");
}
