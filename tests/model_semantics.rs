//! Experiment E9 — the model itself (Figure 1 / §3 / §7 semantics), probed
//! through the same register/permission vocabulary the protocols use:
//! permission naks, region confinement, `legalChange` policies, overlap,
//! and the Byzantine-cannot-bypass-permissions invariant.

use agreement::cheap_quorum;
use agreement::nebcast;
use agreement::protected;
use agreement::types::{sigtags, CqSigned, Msg, PaxSlot, Pid, RegVal, Value};
use rdma_sim::{
    MemRequest, MemResponse, MemWire, MemoryActor, MemoryClient, OpId, Permission, RegId,
};
use sigsim::SigAuthority;
use simnet::{Actor, ActorId, Context, EventKind, Simulation, Time};

/// Fires a scripted request list at one memory, recording responses.
struct Probe {
    mem: ActorId,
    script: Vec<MemRequest<RegVal>>,
    client: MemoryClient<RegVal, Msg>,
    responses: Vec<(OpId, MemResponse<RegVal>)>,
}

impl Probe {
    fn new(mem: ActorId, script: Vec<MemRequest<RegVal>>) -> Probe {
        Probe {
            mem,
            script,
            client: MemoryClient::new(),
            responses: Vec::new(),
        }
    }
}

impl Actor<Msg> for Probe {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                for req in self.script.drain(..) {
                    self.client.submit(ctx, self.mem, req);
                }
            }
            EventKind::Msg {
                from,
                msg: Msg::Mem(wire),
            } => {
                if let Some(c) = self.client.on_wire(ctx, from, wire) {
                    self.responses.push((c.op, c.resp));
                }
            }
            _ => {}
        }
    }
}

fn run_probe(
    mem: MemoryActor<RegVal, Msg>,
    script: Vec<MemRequest<RegVal>>,
) -> Vec<MemResponse<RegVal>> {
    let mut sim: Simulation<Msg> = Simulation::new(1);
    let mem_id = sim.add(mem);
    let probe = sim.add(Probe::new(mem_id, script));
    sim.run_to_quiescence(Time::from_delays(200));
    let mut r = sim.actor_as::<Probe>(probe).unwrap().responses.clone();
    r.sort_by_key(|(op, _)| *op);
    r.into_iter().map(|(_, resp)| resp).collect()
}

fn sample_cq_value(auth: &mut SigAuthority, signer_id: Pid, v: Value) -> RegVal {
    let s = auth.register(signer_id);
    let sig = s.sign(&(sigtags::CQ_VALUE, v));
    RegVal::CqValue(CqSigned {
        value: v,
        leader_sig: sig,
        own_sig: sig,
    })
}

/// §3: a process "cannot operate on memories without the required
/// permission" — probing as the WRONG process naks.
#[test]
fn byzantine_cannot_write_someone_elses_cq_region() {
    // The probe is actor 1; Cheap Quorum region layout for procs {2,3}
    // with leader 2: the probe owns nothing.
    let procs = vec![ActorId(2), ActorId(3)];
    let mem = cheap_quorum::memory_actor(&procs, ActorId(2));
    let mut auth = SigAuthority::new(1);
    let junk = sample_cq_value(&mut auth, ActorId(1), Value(9));
    let out = run_probe(
        mem,
        vec![
            MemRequest::Write {
                region: cheap_quorum::proc_region(ActorId(2)),
                reg: cheap_quorum::value_reg(ActorId(2)),
                value: junk.clone(),
            },
            MemRequest::Write {
                region: cheap_quorum::LEADER_REGION,
                reg: cheap_quorum::VALUE_L,
                value: junk,
            },
            // Reading is fine (SWMR: everyone reads).
            MemRequest::Read {
                region: cheap_quorum::proc_region(ActorId(2)),
                reg: cheap_quorum::value_reg(ActorId(2)),
            },
        ],
    );
    assert_eq!(out[0], MemResponse::Nak);
    assert_eq!(out[1], MemResponse::Nak);
    assert_eq!(out[2], MemResponse::Value(None));
}

/// Cheap Quorum's `legalChange`: ONLY the revoke-leader-write shape passes.
#[test]
fn cq_legal_change_admits_only_the_revocation() {
    let probe_id = ActorId(1);
    let procs = vec![ActorId(2), ActorId(3)];
    let out = run_probe(
        cheap_quorum::memory_actor(&procs, ActorId(2)),
        vec![
            // Attempt to grab the leader region for ourselves: rejected.
            MemRequest::ChangePerm {
                region: cheap_quorum::LEADER_REGION,
                new: Permission::exclusive_writer(probe_id),
            },
            // Attempt to open someone's private region: rejected.
            MemRequest::ChangePerm {
                region: cheap_quorum::proc_region(ActorId(3)),
                new: Permission::open(),
            },
            // The one legal move: revoke the leader's write permission.
            MemRequest::ChangePerm {
                region: cheap_quorum::LEADER_REGION,
                new: Permission::read_only(),
            },
        ],
    );
    assert_eq!(out[0], MemResponse::PermNak);
    assert_eq!(out[1], MemResponse::PermNak);
    assert_eq!(out[2], MemResponse::PermAck);
}

/// Protected Memory Paxos's `legalChange`: any acquire-exclusive passes,
/// anything else is rejected; the write permission really moves.
#[test]
fn pmp_permission_handoff_semantics() {
    let probe_id = ActorId(1); // sim layout: mem=0, probe=1
    let slot_mine = protected::slot_reg(agreement::Instance(0), probe_id);
    let out = run_probe(
        protected::memory_actor(ActorId(9)), // someone else holds it
        vec![
            // Writing while not owner: nak.
            MemRequest::Write {
                region: protected::REGION,
                reg: slot_mine,
                value: RegVal::Slot(PaxSlot::phase1(agreement::Ballot {
                    round: 1,
                    pid: probe_id,
                })),
            },
            // Illegal shapes rejected.
            MemRequest::ChangePerm {
                region: protected::REGION,
                new: Permission::open(),
            },
            // Acquire-exclusive: accepted...
            MemRequest::ChangePerm {
                region: protected::REGION,
                new: Permission::exclusive_writer(probe_id),
            },
            // ...and now the write lands.
            MemRequest::Write {
                region: protected::REGION,
                reg: slot_mine,
                value: RegVal::Slot(PaxSlot::phase1(agreement::Ballot {
                    round: 1,
                    pid: probe_id,
                })),
            },
        ],
    );
    assert_eq!(out[0], MemResponse::Nak);
    assert_eq!(out[1], MemResponse::PermNak);
    assert_eq!(out[2], MemResponse::PermAck);
    assert_eq!(out[3], MemResponse::Ack);
}

/// §7's overlapping registration: the whole broadcast array is readable
/// through one region while rows stay write-exclusive through another —
/// the same register is in both.
#[test]
fn nebcast_overlapping_regions() {
    let probe_id = ActorId(1);
    let procs = vec![probe_id, ActorId(2)];
    let mut mem = MemoryActor::new(rdma_sim::LegalChange::Static);
    nebcast::configure_memory(&mut mem, &procs);
    let my_slot = nebcast::slot_reg(probe_id, 1, probe_id);
    let their_slot = nebcast::slot_reg(ActorId(2), 1, ActorId(2));
    let out = run_probe(
        mem,
        vec![
            // Write own slot through own row region: ok.
            MemRequest::Write {
                region: nebcast::row_region(probe_id),
                reg: my_slot,
                value: RegVal::LbFlag(Value(1)), // payload type irrelevant here
            },
            // Write own slot through the ALL region: nak (read-only).
            MemRequest::Write {
                region: nebcast::ALL_REGION,
                reg: my_slot,
                value: RegVal::LbFlag(Value(2)),
            },
            // Write someone else's slot through their row: nak.
            MemRequest::Write {
                region: nebcast::row_region(ActorId(2)),
                reg: their_slot,
                value: RegVal::LbFlag(Value(3)),
            },
            // Read own slot through the ALL region: ok, sees the row write.
            MemRequest::Read {
                region: nebcast::ALL_REGION,
                reg: my_slot,
            },
            // Range-read the whole array: exactly one register written.
            MemRequest::ReadRange {
                region: nebcast::ALL_REGION,
                within: None,
            },
        ],
    );
    assert_eq!(out[0], MemResponse::Ack);
    assert_eq!(out[1], MemResponse::Nak);
    assert_eq!(out[2], MemResponse::Nak);
    assert_eq!(out[3], MemResponse::Value(Some(RegVal::LbFlag(Value(1)))));
    match &out[4] {
        MemResponse::Range(rows) => assert_eq!(rows.len(), 1),
        other => panic!("expected range, got {other:?}"),
    }
}

/// Register-outside-region confinement: naming the wrong region naks even
/// with write permission on that region.
#[test]
fn region_confinement() {
    let probe_id = ActorId(1);
    let procs = vec![probe_id];
    let mut mem = MemoryActor::new(rdma_sim::LegalChange::Static);
    nebcast::configure_memory(&mut mem, &procs);
    // A CQ register accessed through a nebcast row region: nak.
    let out = run_probe(
        mem,
        vec![MemRequest::Write {
            region: nebcast::row_region(probe_id),
            reg: RegId::two(agreement::types::spaces::CQ, 1, 0),
            value: RegVal::LbFlag(Value(1)),
        }],
    );
    assert_eq!(out[0], MemResponse::Nak);
}

/// A crashed memory hangs (never answers) — callers cannot distinguish it
/// from a slow one, per §3.
#[test]
fn crashed_memory_is_silent() {
    let mut sim: Simulation<Msg> = Simulation::new(1);
    let mem = sim.add(protected::memory_actor(ActorId(1)));
    let probe = sim.add(Probe::new(
        mem,
        vec![MemRequest::Read {
            region: protected::REGION,
            reg: protected::slot_reg(agreement::Instance(0), ActorId(1)),
        }],
    ));
    sim.crash_at(mem, Time::ZERO);
    sim.run_to_quiescence(Time::from_delays(300));
    assert!(sim.actor_as::<Probe>(probe).unwrap().responses.is_empty());
}

/// MemWire embedding round-trips through the unified message type.
#[test]
fn wire_embedding_round_trip() {
    use rdma_sim::MemEmbed;
    let wire: MemWire<RegVal> = MemWire::Resp {
        op: OpId(9),
        resp: MemResponse::Value(None),
    };
    let msg = Msg::from_wire(wire);
    assert!(msg.into_wire().is_ok());
}
