//! Experiment E8 — Lemma 4.1: the three properties of non-equivocating
//! broadcast, under honest broadcasters, an equivocating Byzantine
//! broadcaster, memory crashes, and randomized schedules (proptest).

use agreement::adversary::NebEquivocator;
use agreement::nebcast::{self, NebEngine};
use agreement::paxos::Dest;
use agreement::trusted::{RbPayload, SetupEvidence, TWire};
use agreement::types::{Msg, Pid, RegVal, Value};
use proptest::prelude::*;
use rdma_sim::{LegalChange, MemoryActor, MemoryClient};
use sigsim::{SigAuthority, SigVerifier, Signer};
use simnet::{Actor, ActorId, Context, DelayModel, Duration, EventKind, Simulation, Time};

/// A minimal honest participant: broadcasts a scripted list of values and
/// records everything it delivers.
struct NebTester {
    engine: NebEngine,
    client: MemoryClient<RegVal, Msg>,
    to_broadcast: Vec<Value>,
    delivered: Vec<(Pid, u64, Value)>,
}

impl NebTester {
    fn new(
        me: Pid,
        procs: Vec<Pid>,
        mems: Vec<ActorId>,
        signer: Signer,
        verifier: SigVerifier,
        to_broadcast: Vec<Value>,
    ) -> NebTester {
        NebTester {
            engine: NebEngine::new(me, procs, mems, signer, verifier),
            client: MemoryClient::new(),
            to_broadcast,
            delivered: Vec::new(),
        }
    }

    fn drain(&mut self) {
        for d in self.engine.take_deliveries() {
            if let RbPayload::Setup { value, .. } = d.wire.payload {
                self.delivered.push((d.from, d.k, value));
            }
        }
    }
}

impl Actor<Msg> for NebTester {
    fn on_event(&mut self, ctx: &mut Context<'_, Msg>, ev: EventKind<Msg>) {
        match ev {
            EventKind::Start => {
                for v in self.to_broadcast.clone() {
                    let wire = TWire {
                        dest: Dest::All,
                        payload: RbPayload::Setup {
                            value: v,
                            evidence: SetupEvidence::default(),
                        },
                        history: Vec::new(),
                    };
                    self.engine.broadcast(ctx, &mut self.client, wire);
                }
                self.engine.poll(ctx, &mut self.client);
                ctx.set_timer(Duration::from_delays(1), 0);
            }
            EventKind::Timer { .. } => {
                self.engine.poll(ctx, &mut self.client);
                self.drain();
                ctx.set_timer(Duration::from_delays(1), 0);
            }
            EventKind::Msg {
                from,
                msg: Msg::Mem(wire),
            } => {
                if let Some(c) = self.client.on_wire(ctx, from, wire) {
                    self.engine.on_completion(ctx, &mut self.client, c);
                    self.drain();
                }
            }
            _ => {}
        }
    }
}

fn neb_memory(procs: &[Pid]) -> MemoryActor<RegVal, Msg> {
    let mut mem = MemoryActor::new(LegalChange::Static);
    nebcast::configure_memory(&mut mem, procs);
    mem
}

/// Property 1: a correct broadcaster's messages are delivered by every
/// correct process, in sequence order.
#[test]
fn property_one_correct_broadcasts_reach_everyone() {
    let (n, m) = (3u32, 3u32);
    let mut sim: Simulation<Msg> = Simulation::new(5);
    let procs: Vec<Pid> = (0..n).map(ActorId).collect();
    let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
    let mut auth = SigAuthority::new(1);
    for i in 0..n {
        let signer = auth.register(ActorId(i));
        let vals: Vec<Value> = (0..4).map(|k| Value(100 * i as u64 + k)).collect();
        sim.add(NebTester::new(
            ActorId(i),
            procs.clone(),
            mems.clone(),
            signer,
            auth.verifier(),
            vals,
        ));
    }
    for _ in 0..m {
        sim.add(neb_memory(&procs));
    }
    sim.run_until(Time::from_delays(400), |s| {
        (0..n).all(|i| s.actor_as::<NebTester>(ActorId(i)).unwrap().delivered.len() >= 12)
    });
    for i in 0..n {
        let t = sim.actor_as::<NebTester>(ActorId(i)).unwrap();
        assert_eq!(
            t.delivered.len(),
            12,
            "process {i} delivered {:?}",
            t.delivered
        );
        // Per-sender sequence order.
        for q in 0..n {
            let ks: Vec<u64> = t
                .delivered
                .iter()
                .filter(|(f, _, _)| *f == ActorId(q))
                .map(|(_, k, _)| *k)
                .collect();
            assert_eq!(ks, vec![1, 2, 3, 4], "process {i} from {q}");
        }
    }
}

/// Property 3: deliveries only happen for values the sender actually
/// broadcast (nobody can inject into another's row: permissions).
#[test]
fn property_three_no_spoofed_deliveries() {
    let (n, m) = (2u32, 3u32);
    let mut sim: Simulation<Msg> = Simulation::new(9);
    let procs: Vec<Pid> = (0..n).map(ActorId).collect();
    let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
    let mut auth = SigAuthority::new(2);
    let s0 = auth.register(ActorId(0));
    let _s1 = auth.register(ActorId(1));
    sim.add(NebTester::new(
        ActorId(0),
        procs.clone(),
        mems.clone(),
        s0,
        auth.verifier(),
        vec![Value(7)],
    ));
    // Process 1 broadcasts nothing; it only listens.
    sim.add(NebTester::new(
        ActorId(1),
        procs.clone(),
        mems.clone(),
        _s1,
        auth.verifier(),
        vec![],
    ));
    for _ in 0..m {
        sim.add(neb_memory(&procs));
    }
    sim.run_until(Time::from_delays(100), |s| {
        !s.actor_as::<NebTester>(ActorId(1))
            .unwrap()
            .delivered
            .is_empty()
    });
    let t1 = sim.actor_as::<NebTester>(ActorId(1)).unwrap();
    assert_eq!(t1.delivered, vec![(ActorId(0), 1, Value(7))]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 2 under attack: an equivocator split-writes two signed
    /// values across replicas; no two correct processes may ever deliver
    /// different values for the same (sender, k) — under any seed, split
    /// point, and link jitter.
    #[test]
    fn property_two_no_divergent_deliveries(
        seed in 0u64..1000,
        split in 1usize..3,
        jitter in 1u64..4,
    ) {
        let (n, m) = (3u32, 3u32);
        let mut sim: Simulation<Msg> = Simulation::new(seed);
        sim.set_default_delay(DelayModel::Uniform {
            lo: Duration::from_delays(1),
            hi: Duration::from_delays(jitter),
        });
        let procs: Vec<Pid> = (0..n).map(ActorId).collect();
        let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
        let mut auth = SigAuthority::new(seed ^ 0xE0);
        let byz_signer = auth.register(ActorId(0));
        // Process 0 is the equivocator; 1 and 2 are honest listeners.
        sim.add(NebEquivocator::new(
            ActorId(0),
            mems.clone(),
            split,
            Value(111),
            Value(222),
            byz_signer,
        ));
        for i in 1..n {
            let signer = auth.register(ActorId(i));
            sim.add(NebTester::new(
                ActorId(i),
                procs.clone(),
                mems.clone(),
                signer,
                auth.verifier(),
                vec![],
            ));
        }
        for _ in 0..m {
            sim.add(neb_memory(&procs));
        }
        sim.run_to_quiescence(Time::from_delays(150));
        // Collect what the two honest processes delivered from the
        // equivocator at k = 1.
        let mut seen = Vec::new();
        for i in 1..n {
            let t = sim.actor_as::<NebTester>(ActorId(i)).unwrap();
            for (f, k, v) in &t.delivered {
                if *f == ActorId(0) && *k == 1 {
                    seen.push(*v);
                }
            }
        }
        // Lemma 4.1 property 2: all deliveries (if any) agree.
        prop_assert!(seen.windows(2).all(|w| w[0] == w[1]), "diverged: {seen:?}");
    }

    /// Property 1 resilience: minority memory crashes never block honest
    /// broadcast delivery.
    #[test]
    fn property_one_with_memory_crashes(seed in 0u64..500, dead in 0usize..2) {
        let (n, m) = (2u32, 5u32);
        let mut sim: Simulation<Msg> = Simulation::new(seed);
        let procs: Vec<Pid> = (0..n).map(ActorId).collect();
        let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
        let mut auth = SigAuthority::new(seed);
        for i in 0..n {
            let signer = auth.register(ActorId(i));
            sim.add(NebTester::new(
                ActorId(i),
                procs.clone(),
                mems.clone(),
                signer,
                auth.verifier(),
                vec![Value(10 + i as u64)],
            ));
        }
        for _ in 0..m {
            sim.add(neb_memory(&procs));
        }
        // Crash up to f_M = 2 memories, chosen by the seed.
        for k in 0..=dead {
            sim.crash_at(mems[(seed as usize + k) % m as usize], Time::ZERO);
        }
        sim.run_until(Time::from_delays(300), |s| {
            (0..n).all(|i| s.actor_as::<NebTester>(ActorId(i)).unwrap().delivered.len() >= 2)
        });
        for i in 0..n {
            let t = sim.actor_as::<NebTester>(ActorId(i)).unwrap();
            prop_assert_eq!(t.delivered.len(), 2, "process {} delivered {:?}", i, &t.delivered);
        }
    }
}
