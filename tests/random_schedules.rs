//! Schedule fuzzing: proptest drives random crash sets, crash times, link
//! jitter and leadership churn against every crash protocol, asserting the
//! asynchronous-safety contract (agreement + validity always, no matter
//! what) and liveness exactly when each protocol's resilience bound says
//! so.

use agreement::aligned::MemoryMode;
use agreement::harness::{
    run_aligned, run_disk_paxos, run_fast_robust, run_mp_paxos, run_protected, Scenario,
};
use proptest::prelude::*;
use simnet::{DelayModel, Duration};

fn jittery(s: &mut Scenario, jitter: u64) {
    if jitter > 0 {
        s.delay = DelayModel::Uniform {
            lo: Duration::from_delays(1),
            hi: Duration::from_delays(1 + jitter),
        };
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Protected Memory Paxos: any non-leader crash set, any crash times,
    /// any jitter — the leader still decides and nobody ever disagrees.
    #[test]
    fn protected_any_follower_crashes(
        seed in 0u64..50_000,
        crashes in proptest::collection::btree_map(1usize..5, 0u64..20, 0..4),
        jitter in 0u64..4,
    ) {
        let mut s = Scenario::common_case(5, 3, seed);
        s.crash_procs = crashes.into_iter().collect();
        jittery(&mut s, jitter);
        s.max_delays = 8_000;
        let r = run_protected(&s);
        prop_assert!(r.agreement, "{r:?}");
        prop_assert!(r.validity, "{r:?}");
        prop_assert!(r.all_decided, "{r:?}");
    }

    /// Leadership churn against Protected Memory Paxos: arbitrary Ω
    /// announcements (possibly conflicting with reality) never break
    /// safety; stabilizing on a live leader restores liveness.
    #[test]
    fn protected_leadership_churn(
        seed in 0u64..50_000,
        churn in proptest::collection::vec((0u64..30, 0usize..3), 0..5),
        jitter in 0u64..3,
    ) {
        let mut s = Scenario::common_case(3, 3, seed);
        s.announce = churn;
        s.announce.push((120, 1)); // eventually: one correct leader
        jittery(&mut s, jitter);
        s.max_delays = 10_000;
        let r = run_protected(&s);
        prop_assert!(r.agreement, "{r:?}");
        prop_assert!(r.all_decided, "{r:?}");
    }

    /// MP Paxos vs Disk Paxos vs PMP vs Aligned on the same random
    /// minority-crash scenario: each protocol individually agrees and is
    /// valid (a differential harness — a bug in any one of the four
    /// state machines shows up as a scenario the others survive).
    #[test]
    fn differential_minority_crashes(
        seed in 0u64..50_000,
        victim in 1usize..3,
        crash_at in 0u64..10,
        jitter in 0u64..3,
    ) {
        let mut s = Scenario::common_case(3, 3, seed);
        s.crash_procs = vec![(victim, crash_at)];
        jittery(&mut s, jitter);
        s.max_delays = 10_000;
        for (name, r) in [
            ("mp", run_mp_paxos(&s)),
            ("disk", run_disk_paxos(&s)),
            ("pmp", run_protected(&s)),
            ("aligned", run_aligned(&s, MemoryMode::DiskStyle)),
        ] {
            prop_assert!(r.agreement, "{name}: {r:?}");
            prop_assert!(r.validity, "{name}: {r:?}");
            prop_assert!(r.all_decided, "{name}: {r:?}");
        }
    }

    /// Memory crash fuzzing: any minority subset, any times — the three
    /// memory-based protocols stay live and safe.
    #[test]
    fn memory_crash_fuzz(
        seed in 0u64..50_000,
        dead in proptest::collection::btree_map(0usize..5, 0u64..8, 0..3),
    ) {
        prop_assume!(dead.len() <= 2);
        let mut s = Scenario::common_case(3, 5, seed);
        s.crash_mems = dead.into_iter().collect();
        s.max_delays = 8_000;
        for (name, r) in [
            ("disk", run_disk_paxos(&s)),
            ("pmp", run_protected(&s)),
            ("aligned", run_aligned(&s, MemoryMode::DiskStyle)),
        ] {
            prop_assert!(r.agreement && r.validity && r.all_decided, "{name}: {r:?}");
        }
    }

    /// Fast & Robust under combined fuzz: jitter + a tight timeout + a
    /// follower crash at a random instant. Agreement and validity always;
    /// termination with the Ω fallback announcement.
    #[test]
    fn fast_robust_combined_fuzz(
        seed in 0u64..50_000,
        crash_at in 0u64..12,
        jitter in 0u64..3,
        timeout in 8u64..20,
    ) {
        let mut s = Scenario::common_case(3, 3, seed);
        s.crash_procs = vec![(2, crash_at)];
        s.announce = vec![(200, 1)];
        jittery(&mut s, jitter);
        s.max_delays = 60_000;
        let (r, _) = run_fast_robust(&s, timeout);
        prop_assert!(r.agreement, "{r:?}");
        prop_assert!(r.validity, "{r:?}");
        prop_assert!(r.all_decided, "{r:?}");
    }
}
