//! Structural contracts of the versioned routing table.
//!
//! The routing table is the sharded service's source of truth for key
//! placement, so its two invariants get property coverage of their own:
//!
//! 1. **Total, unambiguous coverage** — at *every* epoch (initial table
//!    and after any sequence of migrations) every key maps to exactly one
//!    group: range starts are strictly increasing from 0, ranges abut
//!    with no gaps, and `group_of` answers for the whole `u64` space.
//! 2. **Monotone versions** — every successful migration bumps the
//!    version by exactly 1 and rejected migrations leave it (and the
//!    routing) untouched, so the version is a true epoch counter.
//!
//! Plus the bridge to the workload: partitioning by a table routes every
//! command to the group the table names.

use agreement::sharded::{partition_with_table, sample_keys, KeyRange, RoutingTable, WorkloadSpec};
use proptest::prelude::*;

/// Structural soundness: sorted, gap-free, total coverage from key 0.
fn assert_covers_exactly_once(t: &RoutingTable, groups: usize) {
    let ranges = t.ranges();
    assert!(!ranges.is_empty());
    assert_eq!(ranges[0].0.lo, 0, "coverage must start at key 0");
    for ((a, ga), (b, _)) in ranges.iter().zip(ranges.iter().skip(1)) {
        assert!(a.lo < a.hi, "empty or inverted range {a:?}");
        assert_eq!(a.hi, b.lo, "gap or overlap between consecutive ranges");
        assert!(*ga < groups, "range {a:?} routed to missing group {ga}");
    }
    let (last, lg) = ranges[ranges.len() - 1];
    assert_eq!(last.hi, u64::MAX, "coverage must run through u64::MAX");
    assert!(lg < groups);
    // Spot checks agree with the ranges, including both edges of every
    // range boundary.
    for &(r, g) in &ranges {
        assert_eq!(t.group_of(r.lo), g);
        assert_eq!(t.group_of(r.hi - 1), g);
    }
}

/// A deterministic little bit mixer for generating migration sequences.
fn mix(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Versions are strictly monotone (+1 per applied migration, frozen
    /// across rejections) and every key keeps exactly one owner at every
    /// epoch reached along a random migration sequence.
    #[test]
    fn versions_monotone_and_coverage_total_at_every_epoch(
        key_space in 1u64..10_000,
        groups in 1usize..9,
        steps in 0usize..40,
        seq_seed in 0u64..1_000_000,
    ) {
        let mut t = RoutingTable::even(key_space, groups);
        prop_assert_eq!(t.version(), 0);
        assert_covers_exactly_once(&t, groups);
        let mut state = seq_seed ^ 0xD1CE;
        let mut expected_version = 0u64;
        for _ in 0..steps {
            let lo = mix(&mut state) % key_space.max(1);
            let width = 1 + mix(&mut state) % 64;
            let range = KeyRange { lo, hi: lo.saturating_add(width) };
            let to = (mix(&mut state) % groups as u64) as usize;
            let before = t.clone();
            match t.migrate(range, to) {
                Ok(from) => {
                    expected_version += 1;
                    prop_assert_ne!(from, to, "migrate accepted a no-op");
                    // The whole range now routes to `to`.
                    prop_assert_eq!(t.group_of(range.lo), to);
                    prop_assert_eq!(t.group_of(range.hi - 1), to);
                }
                Err(_) => {
                    prop_assert_eq!(&t, &before, "a rejected migration mutated the table");
                }
            }
            prop_assert_eq!(t.version(), expected_version, "version is not a step counter");
            assert_covers_exactly_once(&t, groups);
        }
    }

    /// Keys outside any migrated range never move: a migration re-routes
    /// its range and nothing else.
    #[test]
    fn migration_only_moves_its_own_range(
        key_space in 64u64..10_000,
        groups in 2usize..9,
        key in 0u64..10_000,
        to in 0usize..9,
    ) {
        let key = key % key_space;
        let to = to % groups;
        let mut t = RoutingTable::even(key_space, groups);
        let before: Vec<usize> = (0..key_space).map(|k| t.group_of(k)).collect();
        if t.migrate(KeyRange::single(key), to).is_ok() {
            for k in 0..key_space {
                let expect = if k == key { to } else { before[k as usize] };
                prop_assert_eq!(t.group_of(k), expect, "key {} moved unexpectedly", k);
            }
        }
    }

    /// Partitioning by a table routes every command to the group the
    /// table names for its key — the bridge the router's dynamic routing
    /// relies on.
    #[test]
    fn table_partition_agrees_with_the_table(
        seed in 0u64..1_000_000,
        total in 1usize..1_500,
        groups in 1usize..9,
    ) {
        let spec = WorkloadSpec::Zipf { keys: 1024, s: 0.99 };
        let table = RoutingTable::even(spec.key_space(), groups);
        let pw = partition_with_table(&spec, seed, total, &table, groups);
        let keys = sample_keys(&spec, seed, total);
        prop_assert_eq!(pw.total(), total);
        prop_assert_eq!(pw.keys.len(), total + 1);
        for (i, &key) in keys.iter().enumerate() {
            prop_assert_eq!(pw.keys[i + 1], key, "key map out of step with the stream");
            prop_assert_eq!(
                pw.group_of[i + 1] as usize,
                table.group_of(key),
                "command {} routed off its key", i + 1
            );
        }
        let spread: usize = pw.backlogs.iter().map(Vec::len).sum();
        prop_assert_eq!(spread, total, "commands lost or duplicated by partitioning");
    }
}

// ---------------------------------------------------------------------
// Rebalancer churn hysteresis (ROADMAP sharded (e)).
// ---------------------------------------------------------------------

/// Drives `rounds` fast-cadence policy windows against a live table: in
/// each window the single hot key dominates whichever group currently
/// owns it (moving the key moves the heat — the churn-inducing feedback
/// loop), and every decision is applied to the table immediately.
fn drive_hot_key_cadence(
    policy: &mut agreement::sharded::RebalancePolicy,
    table: &mut RoutingTable,
    rounds: u64,
) -> usize {
    let mut migrations = 0;
    for round in 0..rounds {
        let owner = table.group_of(7);
        for _ in 0..100 {
            policy.observe(7, owner);
        }
        for _ in 0..5 {
            policy.observe(3000, 1 - owner);
        }
        let now = simnet::Time((round + 1) * 20 * simnet::TICKS_PER_DELAY);
        if let Some((range, to)) = policy.decide(table, now) {
            table.migrate(range, to).expect("policy picks a legal move");
            migrations += 1;
        }
    }
    migrations
}

#[test]
fn hysteresis_stops_a_hot_range_bouncing_between_two_groups() {
    use agreement::sharded::{RebalanceConfig, RebalancePolicy};
    let fast = RebalanceConfig {
        check_every_delays: 20,
        cooldown_delays: 0,
        hot_group_permille: 300,
        hot_key_permille: 100,
        min_window_commits: 10,
        min_hold_delays: 0,
    };
    // Without hysteresis the feedback loop ping-pongs the key: every
    // window sees the (new) owner hot and moves the same key back.
    let mut p0 = RebalancePolicy::new(fast, 2);
    let mut t0 = RoutingTable::even(4096, 2);
    let moves = drive_hot_key_cadence(&mut p0, &mut t0, 10);
    assert!(
        p0.moves_of(7) >= 3,
        "churn baseline vanished: key 7 moved only {} times ({moves} total)",
        p0.moves_of(7)
    );

    // With a hold longer than the drive, the key migrates exactly once
    // and then stays put — the hysteresis pin.
    let held = RebalanceConfig {
        min_hold_delays: 10_000,
        ..fast
    };
    let mut p1 = RebalancePolicy::new(held, 2);
    let mut t1 = RoutingTable::even(4096, 2);
    drive_hot_key_cadence(&mut p1, &mut t1, 10);
    assert_eq!(
        p1.moves_of(7),
        1,
        "hot key still bounced with min_hold_delays set"
    );
    assert_eq!(t1.version(), 1, "exactly one epoch flip expected");
}

#[test]
fn hysteresis_cuts_migration_churn_end_to_end() {
    use agreement::harness::{run_sharded, ShardedScenario};
    use agreement::sharded::RebalanceConfig;
    // A single pinned hot key under a deliberately over-eager policy
    // (no cooldown, fast cadence): without the hold the hot range
    // bounces, with it the policy settles after one move.
    let scenario = |hold: u64| {
        let mut sc = ShardedScenario::common_case(2, 3, 3, 19);
        sc.total_cmds = 1_200;
        sc.window = 12;
        sc.batch = 4;
        sc.max_delays = 60_000;
        sc.workload = WorkloadSpec::HotShard {
            keys: 4096,
            hot_key: 7,
            hot_permille: 700,
        };
        sc.range_routing = true;
        sc.rebalance = Some(RebalanceConfig {
            check_every_delays: 30,
            cooldown_delays: 0,
            hot_group_permille: 300,
            hot_key_permille: 100,
            min_window_commits: 32,
            min_hold_delays: hold,
        });
        sc
    };
    let churny = run_sharded(&scenario(0));
    let held = run_sharded(&scenario(5_000));
    assert!(churny.all_committed && churny.all_logs_agree && churny.no_cross_group_leak);
    assert!(held.all_committed && held.all_logs_agree && held.no_cross_group_leak);
    assert!(
        churny.migrations_completed >= 2,
        "churn baseline vanished: {} migrations",
        churny.migrations_completed
    );
    // The hold pins the hot range after its first move: at most one
    // migration per distinct hot range, and strictly less re-routing
    // than the bouncing baseline.
    assert!(
        held.migrations_completed < churny.migrations_completed,
        "hold did not reduce migrations: {} vs {}",
        held.migrations_completed,
        churny.migrations_completed
    );
    assert!(
        held.rerouted_commands < churny.rerouted_commands,
        "hold did not reduce re-routing: {} vs {}",
        held.rerouted_commands,
        churny.rerouted_commands
    );
}
