//! Experiment E1 — the Table 1 row the paper adds: weak Byzantine
//! agreement with `n = 2·f_P + 1` (async, signatures, RDMA
//! non-equivocation), plus the crash-side bounds of §5.
//!
//! The matrix sweeps n and the number of faulty processes; at the bound the
//! protocols must terminate and agree, past the bound they must *stay safe*
//! (block rather than split).

use agreement::aligned::MemoryMode;
use agreement::harness::{
    run_aligned, run_disk_paxos, run_fast_robust, run_mp_paxos, run_protected, run_robust_backup,
    Scenario,
};

/// Fast & Robust at the bound: f = (n-1)/2 silent Byzantine processes.
#[test]
fn fast_robust_tolerates_f_byzantine_at_the_bound() {
    for n in [3usize, 5, 7] {
        let f = (n - 1) / 2;
        let mut s = Scenario::common_case(n, 3, 11 + n as u64);
        s.byz_silent = (n - f..n).collect();
        s.max_delays = 30_000;
        let (report, _) = run_fast_robust(&s, 25);
        assert!(report.all_decided, "n={n}, f={f}: {report:?}");
        assert!(report.agreement, "n={n}, f={f}: {report:?}");
        // Weak validity: no faulty process's junk decided (inputs only).
        assert!(report.validity, "n={n}, f={f}: {report:?}");
    }
}

/// One more Byzantine process than the bound: correct processes can no
/// longer all terminate (n - (f+1) < majority), but nothing diverges.
#[test]
fn fast_robust_blocks_safely_beyond_the_bound() {
    let n = 3;
    let mut s = Scenario::common_case(n, 3, 77);
    s.byz_silent = vec![1, 2]; // f+1 = 2 silent Byzantine
    s.max_delays = 4_000;
    let (report, _) = run_fast_robust(&s, 25);
    // The leader alone may fast-decide; the other correct processes are
    // gone (Byzantine), so "all_decided" can hold trivially here — the
    // meaningful assertion is agreement among whoever decided.
    assert!(report.agreement, "{report:?}");
}

/// Robust Backup alone at the bound (Theorem 4.4).
#[test]
fn robust_backup_tolerates_f_byzantine() {
    for n in [3usize, 5] {
        let f = (n - 1) / 2;
        let mut s = Scenario::common_case(n, 3, 5 + n as u64);
        s.byz_silent = (n - f..n).collect();
        s.max_delays = 30_000;
        let (report, _) = run_robust_backup(&s);
        assert!(report.all_decided, "n={n}: {report:?}");
        assert!(report.agreement, "n={n}: {report:?}");
    }
}

/// Protected Memory Paxos at the crash bound: n = f_P + 1 (all but one
/// process crash) and m = 2·f_M + 1 (minority of memories crash).
#[test]
fn protected_survives_n_minus_one_crashes_and_memory_minority() {
    for n in [2usize, 3, 5] {
        let mut s = Scenario::common_case(n, 5, 3 + n as u64);
        s.crash_procs = (1..n).map(|i| (i, 0)).collect();
        s.crash_mems = vec![(1, 0), (3, 0)]; // f_M = 2 of m = 5
        let report = run_protected(&s);
        assert!(report.all_decided, "n={n}: {report:?}");
        assert_eq!(report.decisions.len(), 1);
        assert!(report.validity);
    }
}

/// Message-passing Paxos needs a majority: f crashes fine, f+1 blocks.
#[test]
fn mp_paxos_majority_bound_is_tight() {
    let n = 5;
    // f = 2 crashes: fine.
    let mut s = Scenario::common_case(n, 0, 21);
    s.crash_procs = vec![(3, 0), (4, 0)];
    let report = run_mp_paxos(&s);
    assert!(report.all_decided && report.agreement, "{report:?}");
    // f + 1 = 3 crashes: blocked, but never wrong.
    let mut s = Scenario::common_case(n, 0, 22);
    s.crash_procs = vec![(2, 0), (3, 0), (4, 0)];
    s.max_delays = 1_500;
    let report = run_mp_paxos(&s);
    assert!(!report.all_decided, "{report:?}");
    assert!(report.decisions.is_empty(), "{report:?}");
}

/// Disk Paxos matches Protected Memory Paxos's resilience (but not speed).
#[test]
fn disk_paxos_survives_n_minus_one_crashes() {
    let mut s = Scenario::common_case(3, 3, 31);
    s.crash_procs = vec![(1, 0), (2, 0)];
    let report = run_disk_paxos(&s);
    assert!(report.all_decided, "{report:?}");
    assert_eq!(report.first_decision_delays, Some(4.0));
}

/// Memory-majority loss blocks the memory-based protocols without
/// violating safety.
#[test]
fn memory_majority_loss_blocks_safely() {
    let mut s = Scenario::common_case(2, 3, 41);
    s.crash_mems = vec![(0, 0), (1, 0)];
    s.max_delays = 1_000;
    let p = run_protected(&s);
    assert!(!p.all_decided && p.decisions.is_empty(), "{p:?}");
    let d = run_disk_paxos(&s);
    assert!(!d.all_decided && d.decisions.is_empty(), "{d:?}");
}

/// Aligned Paxos only cares about the combined count (teaser for E4; the
/// full grid lives in aligned_majority.rs).
#[test]
fn aligned_survives_what_would_kill_either_side() {
    // n=2, m=3 → 5 agents, majority 3. Kill 1 process + 1 memory: a
    // process-majority protocol (MP Paxos) and nothing-but-memories
    // protocols both have trouble; Aligned sails through.
    let mut s = Scenario::common_case(2, 3, 51);
    s.crash_procs = vec![(1, 0)];
    s.crash_mems = vec![(2, 0)];
    let report = run_aligned(&s, MemoryMode::DiskStyle);
    assert!(report.all_decided, "{report:?}");
    assert!(report.validity);
}

// ---------------------------------------------------------------------
// The sharded Byzantine matrix: the paper's n = 2f+1 bound, lifted into
// the production-facing service. Each Byzantine-mode group replicates
// through signed non-equivocating broadcast and the router confirms
// commits at f+1 distinct replica reports, so the sweeps below assert
// the service-level contract — every client command exactly once, no
// per-group divergence, no cross-group corruption — with f silent or
// equivocating actors per group.
// ---------------------------------------------------------------------

use agreement::harness::{run_sharded, ShardedScenario};
use agreement::sharded::GroupMode;

#[path = "byz_support.rs"]
mod byz_support;
use byz_support::{assert_exactly_once, is_client_id};

/// A Byzantine-mode sharded scenario: every group runs the broadcast
/// protocol, sized so a sweep stays fast.
fn byz_sharded(groups: usize, n: usize, seed: u64) -> ShardedScenario {
    let mut sc = ShardedScenario::common_case(groups, n, 3, seed);
    sc.group_modes = vec![GroupMode::Byzantine; groups];
    sc.total_cmds = 20 * groups;
    sc.window = 4;
    sc.batch = 2;
    sc.max_delays = 30_000;
    sc
}

/// f silent Byzantine replicas per group, across the shard-count sweep:
/// at the bound (n = 2f+1) every group still commits its whole share.
#[test]
fn sharded_byzantine_matrix_f_silent_per_group() {
    for &groups in &[1usize, 4, 8] {
        let mut sc = byz_sharded(groups, 3, 100 + groups as u64);
        // f = 1 of n = 3, in every group (a different replica slot per
        // group so the sweep covers follower positions).
        sc.byz_silent = (0..groups).map(|g| (g, 1 + g % 2)).collect();
        let r = run_sharded(&sc);
        assert!(r.all_committed, "G={groups}: {r:?}");
        assert!(r.all_logs_agree, "G={groups}: replica logs diverged");
        assert!(r.no_cross_group_leak, "G={groups}: partition violated");
        assert_exactly_once(&sc, &r);
        for (g, group) in r.groups.iter().enumerate() {
            assert_eq!(group.mode, GroupMode::Byzantine);
            assert!(group.committed > 0, "G={groups} group {g} starved");
        }
    }
}

/// n = 5 with f = 2 silent Byzantine replicas: the bound holds at the
/// next matrix row too.
#[test]
fn sharded_byzantine_five_replicas_two_silent() {
    let mut sc = byz_sharded(2, 5, 131);
    sc.byz_silent = vec![(0, 3), (0, 4), (1, 1), (1, 2)];
    let r = run_sharded(&sc);
    assert!(r.all_committed, "{r:?}");
    assert!(r.all_logs_agree && r.no_cross_group_leak);
    assert_exactly_once(&sc, &r);
}

/// An equivocating Byzantine *leader* per Byzantine group, across the
/// shard-count sweep: its rewrite equivocation is blocked by the
/// broadcast audit, its fabricated commit claims die short of the f+1
/// confirmation quorum, and the scripted failover restores liveness —
/// every client command still commits exactly once.
#[test]
fn sharded_byzantine_matrix_equivocating_leaders() {
    for &groups in &[1usize, 4, 8] {
        let mut sc = byz_sharded(groups, 3, 200 + groups as u64);
        // The last group's initial leader is the adversary; Ω promotes
        // its second replica after the lies have been told.
        let g = groups - 1;
        sc.byz_equivocators = vec![(g, 0)];
        sc.announce = vec![(g, 1, 80)];
        let r = run_sharded(&sc);
        assert!(r.all_committed, "G={groups}: {r:?}");
        assert!(r.all_logs_agree, "G={groups}: replica logs diverged");
        assert!(r.no_cross_group_leak, "G={groups}: partition violated");
        assert_exactly_once(&sc, &r);
        assert!(
            r.byz_unconfirmed_claims > 0,
            "G={groups}: the adversary's invented commands left no trace: {r:?}"
        );
        assert!(
            r.byz_withheld_reports > 0,
            "G={groups}: the confirmation quorum did no work: {r:?}"
        );
        assert!(
            r.equivocations_blocked > 0,
            "G={groups}: nobody caught the rewrite equivocation: {r:?}"
        );
    }
}

/// A *fully* Byzantine group (every replica silent) stalls itself — and
/// corrupts nothing else: sibling groups commit their complete shares
/// and their logs contain only their own commands.
#[test]
fn fully_byzantine_group_never_corrupts_sibling_groups() {
    let mut sc = byz_sharded(4, 3, 300);
    sc.byz_silent = (0..3).map(|i| (2usize, i)).collect();
    sc.max_delays = 2_500; // the dead group holds the run open; cap it
    let r = run_sharded(&sc);
    assert!(!r.all_committed, "a dead group cannot commit its share");
    assert_eq!(r.groups[2].committed, 0, "silent group committed?!");
    assert_eq!(r.groups[2].entries, 0);
    // Every sibling drained its whole backlog, exactly once, and no
    // command of the dead group's key range leaked into a sibling log.
    let per_group_total: usize = r.groups.iter().map(|g| g.committed).sum();
    assert_eq!(
        per_group_total, r.committed,
        "per-group commit accounting is inconsistent"
    );
    assert!(r.all_logs_agree && r.no_cross_group_leak, "{r:?}");
    let mut seen = std::collections::HashSet::new();
    for group in &r.groups {
        for &v in &group.log {
            if is_client_id(v) {
                assert!(seen.insert(v.0), "command {} duplicated", v.0);
            }
        }
    }
    assert_eq!(seen.len(), r.committed);
}

/// Crash-mode and Byzantine-mode groups coexist behind one router: the
/// per-group `GroupMode` switch is local to the group.
#[test]
fn mixed_mode_deployment_commits_everything() {
    let mut sc = byz_sharded(4, 3, 400);
    sc.group_modes = vec![
        GroupMode::CrashPmp,
        GroupMode::Byzantine,
        GroupMode::CrashPmp,
        GroupMode::Byzantine,
    ];
    sc.byz_silent = vec![(1, 2)];
    // A crash-mode leader failure rides along: both failure models in
    // one deployment, each handled by its own protocol.
    sc.crash_leaders = vec![(2, 15)];
    sc.announce = vec![(2, 1, 70)];
    let r = run_sharded(&sc);
    assert!(r.all_committed, "{r:?}");
    assert!(r.all_logs_agree && r.no_cross_group_leak);
    assert_exactly_once(&sc, &r);
    assert_eq!(r.groups[0].mode, GroupMode::CrashPmp);
    assert_eq!(r.groups[1].mode, GroupMode::Byzantine);
}
