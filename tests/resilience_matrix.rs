//! Experiment E1 — the Table 1 row the paper adds: weak Byzantine
//! agreement with `n = 2·f_P + 1` (async, signatures, RDMA
//! non-equivocation), plus the crash-side bounds of §5.
//!
//! The matrix sweeps n and the number of faulty processes; at the bound the
//! protocols must terminate and agree, past the bound they must *stay safe*
//! (block rather than split).

use agreement::aligned::MemoryMode;
use agreement::harness::{
    run_aligned, run_disk_paxos, run_fast_robust, run_mp_paxos, run_protected, run_robust_backup,
    Scenario,
};

/// Fast & Robust at the bound: f = (n-1)/2 silent Byzantine processes.
#[test]
fn fast_robust_tolerates_f_byzantine_at_the_bound() {
    for n in [3usize, 5, 7] {
        let f = (n - 1) / 2;
        let mut s = Scenario::common_case(n, 3, 11 + n as u64);
        s.byz_silent = (n - f..n).collect();
        s.max_delays = 30_000;
        let (report, _) = run_fast_robust(&s, 25);
        assert!(report.all_decided, "n={n}, f={f}: {report:?}");
        assert!(report.agreement, "n={n}, f={f}: {report:?}");
        // Weak validity: no faulty process's junk decided (inputs only).
        assert!(report.validity, "n={n}, f={f}: {report:?}");
    }
}

/// One more Byzantine process than the bound: correct processes can no
/// longer all terminate (n - (f+1) < majority), but nothing diverges.
#[test]
fn fast_robust_blocks_safely_beyond_the_bound() {
    let n = 3;
    let mut s = Scenario::common_case(n, 3, 77);
    s.byz_silent = vec![1, 2]; // f+1 = 2 silent Byzantine
    s.max_delays = 4_000;
    let (report, _) = run_fast_robust(&s, 25);
    // The leader alone may fast-decide; the other correct processes are
    // gone (Byzantine), so "all_decided" can hold trivially here — the
    // meaningful assertion is agreement among whoever decided.
    assert!(report.agreement, "{report:?}");
}

/// Robust Backup alone at the bound (Theorem 4.4).
#[test]
fn robust_backup_tolerates_f_byzantine() {
    for n in [3usize, 5] {
        let f = (n - 1) / 2;
        let mut s = Scenario::common_case(n, 3, 5 + n as u64);
        s.byz_silent = (n - f..n).collect();
        s.max_delays = 30_000;
        let (report, _) = run_robust_backup(&s);
        assert!(report.all_decided, "n={n}: {report:?}");
        assert!(report.agreement, "n={n}: {report:?}");
    }
}

/// Protected Memory Paxos at the crash bound: n = f_P + 1 (all but one
/// process crash) and m = 2·f_M + 1 (minority of memories crash).
#[test]
fn protected_survives_n_minus_one_crashes_and_memory_minority() {
    for n in [2usize, 3, 5] {
        let mut s = Scenario::common_case(n, 5, 3 + n as u64);
        s.crash_procs = (1..n).map(|i| (i, 0)).collect();
        s.crash_mems = vec![(1, 0), (3, 0)]; // f_M = 2 of m = 5
        let report = run_protected(&s);
        assert!(report.all_decided, "n={n}: {report:?}");
        assert_eq!(report.decisions.len(), 1);
        assert!(report.validity);
    }
}

/// Message-passing Paxos needs a majority: f crashes fine, f+1 blocks.
#[test]
fn mp_paxos_majority_bound_is_tight() {
    let n = 5;
    // f = 2 crashes: fine.
    let mut s = Scenario::common_case(n, 0, 21);
    s.crash_procs = vec![(3, 0), (4, 0)];
    let report = run_mp_paxos(&s);
    assert!(report.all_decided && report.agreement, "{report:?}");
    // f + 1 = 3 crashes: blocked, but never wrong.
    let mut s = Scenario::common_case(n, 0, 22);
    s.crash_procs = vec![(2, 0), (3, 0), (4, 0)];
    s.max_delays = 1_500;
    let report = run_mp_paxos(&s);
    assert!(!report.all_decided, "{report:?}");
    assert!(report.decisions.is_empty(), "{report:?}");
}

/// Disk Paxos matches Protected Memory Paxos's resilience (but not speed).
#[test]
fn disk_paxos_survives_n_minus_one_crashes() {
    let mut s = Scenario::common_case(3, 3, 31);
    s.crash_procs = vec![(1, 0), (2, 0)];
    let report = run_disk_paxos(&s);
    assert!(report.all_decided, "{report:?}");
    assert_eq!(report.first_decision_delays, Some(4.0));
}

/// Memory-majority loss blocks the memory-based protocols without
/// violating safety.
#[test]
fn memory_majority_loss_blocks_safely() {
    let mut s = Scenario::common_case(2, 3, 41);
    s.crash_mems = vec![(0, 0), (1, 0)];
    s.max_delays = 1_000;
    let p = run_protected(&s);
    assert!(!p.all_decided && p.decisions.is_empty(), "{p:?}");
    let d = run_disk_paxos(&s);
    assert!(!d.all_decided && d.decisions.is_empty(), "{d:?}");
}

/// Aligned Paxos only cares about the combined count (teaser for E4; the
/// full grid lives in aligned_majority.rs).
#[test]
fn aligned_survives_what_would_kill_either_side() {
    // n=2, m=3 → 5 agents, majority 3. Kill 1 process + 1 memory: a
    // process-majority protocol (MP Paxos) and nothing-but-memories
    // protocols both have trouble; Aligned sails through.
    let mut s = Scenario::common_case(2, 3, 51);
    s.crash_procs = vec![(1, 0)];
    s.crash_mems = vec![(2, 0)];
    let report = run_aligned(&s, MemoryMode::DiskStyle);
    assert!(report.all_decided, "{report:?}");
    assert!(report.validity);
}
