//! Sharded-service determinism and safety.
//!
//! The sharded layer composes many single-group instances of the paper's
//! protocol on one kernel, so two properties must hold end to end:
//!
//! 1. **Determinism** — a seed fully determines the run: per-group logs,
//!    latency percentiles, stall windows, message counts — everything in
//!    the report — must be identical across repeated runs, including runs
//!    with mid-stream leader crashes and failover in several groups.
//! 2. **Per-group safety** — within every group, replica logs never
//!    diverge (prefix consistency), and the hash partition is respected:
//!    a command never commits in a group its key does not map to.

use agreement::harness::{run_sharded, run_sharded_with_events, ShardedRunReport, ShardedScenario};
use agreement::sharded::{KeyRange, ScriptedMigration, WorkloadSpec};
use simnet::{DelayModel, Duration};

/// G=4 closed-loop Zipf run with leader crashes in 2 of the 4 groups.
fn crashy_scenario(seed: u64) -> ShardedScenario {
    let mut sc = ShardedScenario::common_case(4, 3, 3, seed);
    sc.total_cmds = 300;
    sc.workload = WorkloadSpec::Zipf {
        keys: 1024,
        s: 0.99,
    };
    sc.window = 6;
    sc.batch = 2;
    sc.max_delays = 20_000;
    // Mid-stream: leaders of groups 0 and 2 crash at different times;
    // Ω elects each group's second replica shortly after.
    sc.crash_leaders = vec![(0, 15), (2, 31)];
    sc.announce = vec![(0, 1, 70), (2, 1, 90)];
    sc
}

fn assert_reports_identical(a: &ShardedRunReport, b: &ShardedRunReport) {
    // Field-by-field for readable failures before the catch-all.
    for (g, (ga, gb)) in a.groups.iter().zip(&b.groups).enumerate() {
        assert_eq!(ga.log, gb.log, "group {g} logs differ across runs");
        assert_eq!(ga, gb, "group {g} reports differ across runs");
    }
    assert_eq!(a, b, "aggregate reports differ across runs");
}

#[test]
fn same_seed_same_run_without_failures() {
    let mut sc = ShardedScenario::common_case(4, 3, 3, 21);
    sc.total_cmds = 240;
    sc.window = 8;
    sc.batch = 4;
    let a = run_sharded(&sc);
    let b = run_sharded(&sc);
    assert!(a.all_committed, "{a:?}");
    assert_reports_identical(&a, &b);
}

#[test]
fn same_seed_same_run_with_leader_crashes_in_two_groups() {
    let sc = crashy_scenario(33);
    let a = run_sharded(&sc);
    let b = run_sharded(&sc);
    assert!(a.all_committed, "{a:?}");
    assert!(a.all_logs_agree && a.no_cross_group_leak);
    assert_reports_identical(&a, &b);
}

#[test]
fn determinism_holds_under_jittered_links() {
    // Jittered delays drive the seeded RNG on every send; repeated runs
    // in fresh kernels must still produce the identical report, crashes
    // and failover included (the sharded analogue of the golden-schedule
    // repetition pins).
    let mut sc = crashy_scenario(47);
    sc.delay = DelayModel::Uniform {
        lo: Duration::from_delays(1),
        hi: Duration::from_delays(3),
    };
    sc.max_delays = 40_000;
    let a = run_sharded(&sc);
    let b = run_sharded(&sc);
    assert!(a.all_committed, "{a:?}");
    assert_reports_identical(&a, &b);
}

#[test]
fn per_group_safety_holds_under_crash_and_failover() {
    for seed in [1, 9, 77] {
        let sc = crashy_scenario(seed);
        let r = run_sharded(&sc);
        assert!(r.all_committed, "seed {seed}: {r:?}");
        assert!(r.all_logs_agree, "seed {seed}: replica logs diverged");
        assert!(r.no_cross_group_leak, "seed {seed}: partition violated");
        // Every group made progress and the crashed groups recovered:
        // each group committed exactly its share of unique commands.
        let per_group: Vec<usize> = r.groups.iter().map(|g| g.committed).collect();
        assert_eq!(per_group.iter().sum::<usize>(), 300, "seed {seed}");
        // At-least-once: a group's log may exceed its unique commands
        // (failover re-submission duplicates, no-op fillers) but never
        // undercut them.
        for (g, report) in r.groups.iter().enumerate() {
            assert!(
                report.entries >= report.committed,
                "seed {seed} group {g}: {report:?}"
            );
        }
    }
}

#[test]
fn partitioned_kernel_is_thread_count_invariant() {
    // The tentpole differential: a fixed (seed, partitions) pins the run
    // bit-for-bit; the worker-thread count must change wall-clock time
    // only. Includes mid-stream leader crashes + failover in two groups,
    // so the invariance covers re-submission, takeover scans, and dedup.
    let mut sc = crashy_scenario(59);
    sc.partitions = 4;
    let reports: Vec<ShardedRunReport> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let mut s = sc.clone();
            s.threads = threads;
            run_sharded(&s)
        })
        .collect();
    assert!(reports[0].all_committed, "{:?}", reports[0]);
    assert!(reports[0].all_logs_agree && reports[0].no_cross_group_leak);
    assert_reports_identical(&reports[0], &reports[1]);
    assert_reports_identical(&reports[0], &reports[2]);
}

#[test]
fn partitioned_kernel_is_thread_count_invariant_under_jitter() {
    // Jittered links drive every partition's RNG stream on every send;
    // thread-count invariance must survive that too (lookahead = the
    // model's 1-delay minimum).
    let mut sc = crashy_scenario(61);
    sc.delay = DelayModel::Uniform {
        lo: Duration::from_delays(1),
        hi: Duration::from_delays(3),
    };
    sc.max_delays = 40_000;
    sc.partitions = 2;
    let mut a = sc.clone();
    a.threads = 1;
    let mut b = sc.clone();
    b.threads = 4;
    let ra = run_sharded(&a);
    let rb = run_sharded(&b);
    assert!(ra.all_committed, "{ra:?}");
    assert_reports_identical(&ra, &rb);
}

#[test]
fn partitioned_run_is_reproducible_and_seed_sensitive() {
    let mut sc = crashy_scenario(71);
    sc.partitions = 4;
    sc.threads = 2;
    let a = run_sharded(&sc);
    let b = run_sharded(&sc);
    assert_reports_identical(&a, &b);
    let mut other = sc.clone();
    other.seed = 72;
    let c = run_sharded(&other);
    assert_ne!(a, c, "partitioned runs ignored the seed");
    // The report carries one queue peak per partition.
    assert_eq!(a.partition_peak_queue_lens.len(), 4);
    assert_eq!(
        a.peak_queue_len,
        a.partition_peak_queue_lens.iter().copied().max().unwrap()
    );
}

#[test]
fn session_dedup_suppresses_failover_duplicates() {
    // A crashed leader with a full window in flight forces the router's
    // at-least-once re-submission; dedup must keep those commands from
    // becoming duplicate log entries, on both kernel paths identically.
    for partitions in [1usize, 4] {
        let mut sc = crashy_scenario(33);
        sc.partitions = partitions;
        let r = run_sharded(&sc);
        assert!(r.all_committed, "partitions={partitions}: {r:?}");
        assert!(
            r.duplicates_suppressed > 0,
            "partitions={partitions}: failover produced no re-submissions \
             to suppress: {r:?}"
        );
        // Exactly-once in the log for this schedule: no client command id
        // appears twice within a group's log (no-op fillers excluded).
        for (g, group) in r.groups.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for v in &group.log {
                if v.0 != u64::MAX {
                    assert!(
                        seen.insert(v.0),
                        "partitions={partitions} group {g}: command {} duplicated",
                        v.0
                    );
                }
            }
        }
    }
}

#[test]
fn tracing_is_invisible_to_the_run_across_thread_counts() {
    // Observer effect, pinned: enabling full tracing + spans on a
    // jittered crash + migration run must leave every virtual-time
    // quantity — logs, decisions, latency percentiles, kernel metrics —
    // bit-identical to the untraced run, at every partitioned-kernel
    // worker-thread count. And the recorded event stream itself must be
    // thread-count invariant (recording rides the deterministic
    // schedule, so threads may only change wall-clock time).
    let mut sc = crashy_scenario(83);
    sc.delay = DelayModel::Uniform {
        lo: Duration::from_delays(1),
        hi: Duration::from_delays(3),
    };
    sc.max_delays = 40_000;
    // A scripted migration racing group 0's crash + failover.
    sc.migrations = vec![ScriptedMigration {
        at_delays: 40,
        range: KeyRange { lo: 0, hi: 512 },
        to: 3,
    }];
    sc.partitions = 4;
    let mut streams = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut untraced = sc.clone();
        untraced.threads = threads;
        let base = run_sharded(&untraced);
        assert!(base.all_committed, "threads={threads}: {base:?}");
        assert!(base.all_logs_agree && base.no_cross_group_leak);
        assert!(base.span_stats.is_empty(), "untraced run grew span stats");

        let mut traced = untraced.clone();
        traced.record_events = true;
        traced.record_spans = true;
        let (mut report, events) = run_sharded_with_events(&traced);
        assert!(!events.is_empty(), "threads={threads}: nothing recorded");
        assert!(!report.span_stats.is_empty());
        report.span_stats = Vec::new();
        assert_reports_identical(&base, &report);
        streams.push(events);
    }
    assert_eq!(
        streams[0], streams[1],
        "2 worker threads changed the traced event stream"
    );
    assert_eq!(
        streams[0], streams[2],
        "4 worker threads changed the traced event stream"
    );
}

#[test]
fn seeds_actually_change_the_schedule() {
    // Guard against a degenerate "deterministic because constant" world.
    let a = run_sharded(&crashy_scenario(100));
    let b = run_sharded(&crashy_scenario(101));
    assert_ne!(
        a.groups.iter().map(|g| g.log.clone()).collect::<Vec<_>>(),
        b.groups.iter().map(|g| g.log.clone()).collect::<Vec<_>>(),
        "different seeds produced identical sharded runs"
    );
}
