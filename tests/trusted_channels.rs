//! The trusted-channel layer (Algorithm 3) under direct attack: claimed
//! histories that misrepresent past broadcasts, sequence-number games, and
//! the end-to-end effect on Robust Backup. Complements the conformance
//! checker's unit suite in `agreement::trusted`.

use agreement::adversary::{HistoryRewriter, SilentActor};
use agreement::nebcast;
use agreement::robust_backup::RobustPaxosActor;
use agreement::types::{Msg, Pid, Value};
use rdma_sim::{LegalChange, MemoryActor};
use sigsim::SigAuthority;
use simnet::{ActorId, Duration, Simulation, Time};

fn neb_memory(procs: &[Pid]) -> MemoryActor<agreement::RegVal, Msg> {
    let mut mem = MemoryActor::new(LegalChange::Static);
    nebcast::configure_memory(&mut mem, procs);
    mem
}

/// A sender that lies about its own past broadcast is distrusted from the
/// lying message on; correct processes still reach consensus without it.
#[test]
fn rewritten_history_is_rejected_and_sender_distrusted() {
    let (n, m) = (3u32, 3u32);
    let mut sim: Simulation<Msg> = Simulation::new(3);
    let procs: Vec<Pid> = (0..n).map(ActorId).collect();
    let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
    let mut auth = SigAuthority::new(17);
    for i in 0..n {
        let signer = auth.register(ActorId(i));
        if i == 2 {
            sim.add(HistoryRewriter::new(
                ActorId(2),
                mems.clone(),
                Value(666), // actually broadcast at k=1
                Value(777), // claimed in the k=2 history
                signer,
            ));
            continue;
        }
        sim.add(RobustPaxosActor::new(
            ActorId(i),
            procs.clone(),
            mems.clone(),
            Value(100 + i as u64),
            Some(ActorId(0)),
            signer,
            auth.verifier(),
            Duration::from_delays(1),
            Duration::from_delays(80),
        ));
    }
    for _ in 0..m {
        sim.add(neb_memory(&procs));
    }
    sim.run_until(Time::from_delays(3_000), |s| {
        [0u32, 1].iter().all(|&i| {
            s.actor_as::<RobustPaxosActor>(ActorId(i))
                .unwrap()
                .decision()
                .is_some()
        })
    });
    for i in [0u32, 1] {
        let a = sim.actor_as::<RobustPaxosActor>(ActorId(i)).unwrap();
        // Consensus completed on a correct value...
        assert_eq!(a.decision(), Some(Value(100)), "process {i}");
    }
    // ...and the liar's junk values never decided anywhere.
}

/// Under the same attack, determinism holds: re-running yields identical
/// outcomes (regression guard for the validation order).
#[test]
fn attack_runs_are_deterministic() {
    let run = |seed: u64| {
        let (n, m) = (3u32, 3u32);
        let mut sim: Simulation<Msg> = Simulation::new(seed);
        let procs: Vec<Pid> = (0..n).map(ActorId).collect();
        let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
        let mut auth = SigAuthority::new(seed);
        for i in 0..n {
            let signer = auth.register(ActorId(i));
            if i == 2 {
                sim.add(HistoryRewriter::new(
                    ActorId(2),
                    mems.clone(),
                    Value(1),
                    Value(2),
                    signer,
                ));
                continue;
            }
            sim.add(RobustPaxosActor::new(
                ActorId(i),
                procs.clone(),
                mems.clone(),
                Value(100 + i as u64),
                Some(ActorId(0)),
                signer,
                auth.verifier(),
                Duration::from_delays(1),
                Duration::from_delays(80),
            ));
        }
        for _ in 0..m {
            sim.add(neb_memory(&procs));
        }
        sim.run_to_quiescence(Time::from_delays(2_500));
        (
            sim.actor_as::<RobustPaxosActor>(ActorId(0))
                .unwrap()
                .decision(),
            sim.metrics().messages_sent,
        )
    };
    assert_eq!(run(9), run(9));
}

/// Baseline sanity for the attack scaffolding: with the adversary replaced
/// by a silent process, the same cluster still decides — the rejection in
/// the first test is about the *lie*, not about having a third process.
#[test]
fn silent_third_process_control_group() {
    let (n, m) = (3u32, 3u32);
    let mut sim: Simulation<Msg> = Simulation::new(3);
    let procs: Vec<Pid> = (0..n).map(ActorId).collect();
    let mems: Vec<ActorId> = (n..n + m).map(ActorId).collect();
    let mut auth = SigAuthority::new(17);
    for i in 0..n {
        let signer = auth.register(ActorId(i));
        if i == 2 {
            sim.add(SilentActor);
            continue;
        }
        sim.add(RobustPaxosActor::new(
            ActorId(i),
            procs.clone(),
            mems.clone(),
            Value(100 + i as u64),
            Some(ActorId(0)),
            signer,
            auth.verifier(),
            Duration::from_delays(1),
            Duration::from_delays(80),
        ));
    }
    for _ in 0..m {
        sim.add(neb_memory(&procs));
    }
    sim.run_until(Time::from_delays(3_000), |s| {
        [0u32, 1].iter().all(|&i| {
            s.actor_as::<RobustPaxosActor>(ActorId(i))
                .unwrap()
                .decision()
                .is_some()
        })
    });
    assert_eq!(
        sim.actor_as::<RobustPaxosActor>(ActorId(0))
            .unwrap()
            .decision(),
        Some(Value(100))
    );
}
