//! Statistical contracts of the sharded workload generators.
//!
//! The uniform / Zipf / hot-shard key streams drive every sharded
//! benchmark and determinism test, so their two contracts get property
//! coverage of their own:
//!
//! 1. **Seed determinism** — `(spec, seed, total)` pins the key stream
//!    (and therefore the partitioned backlogs) exactly; different seeds
//!    produce different streams.
//! 2. **Intended skew** — uniform spreads evenly, Zipf concentrates mass
//!    on head ranks (more, the larger `s`), and hot-shard hits its pinned
//!    key at the configured rate within tolerance.

use agreement::sharded::{group_of_key, partition, sample_keys, WorkloadSpec};
use proptest::prelude::*;

/// Frequency of `key` in a sample, as a fraction.
fn frequency(keys: &[u64], key: u64) -> f64 {
    keys.iter().filter(|&&k| k == key).count() as f64 / keys.len().max(1) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generator's stream — and the backlogs built from it — is a
    /// pure function of (spec, seed, total).
    #[test]
    fn streams_are_seed_deterministic(
        seed in 0u64..1_000_000,
        total in 1usize..2_000,
        groups in 1usize..9,
        which in 0usize..3,
        skew_centi in 50u64..150,
        hot_permille in 0u32..1_000,
    ) {
        let spec = match which {
            0 => WorkloadSpec::Uniform { keys: 1024 },
            1 => WorkloadSpec::Zipf { keys: 1024, s: skew_centi as f64 / 100.0 },
            _ => WorkloadSpec::HotShard { keys: 1024, hot_key: 7, hot_permille },
        };
        let a = sample_keys(&spec, seed, total);
        let b = sample_keys(&spec, seed, total);
        prop_assert_eq!(&a, &b, "same seed, different stream");
        let pa = partition(&spec, seed, total, groups);
        let pb = partition(&spec, seed, total, groups);
        prop_assert_eq!(&pa.backlogs, &pb.backlogs);
        prop_assert_eq!(&pa.group_of, &pb.group_of);
        // partition() routes exactly the sample_keys stream.
        for (i, &key) in a.iter().enumerate() {
            prop_assert_eq!(
                pa.group_of[i + 1] as usize,
                group_of_key(key, groups),
                "command {} routed off its key", i + 1
            );
        }
        // A different seed moves at least one key (overwhelmingly likely
        // at these sizes; checked so "deterministic" can't degenerate to
        // "constant").
        if total >= 64 {
            let c = sample_keys(&spec, seed ^ 0x5555_AAAA, total);
            if spec != (WorkloadSpec::HotShard { keys: 1024, hot_key: 7, hot_permille })
                || hot_permille < 900
            {
                prop_assert_ne!(&a, &c, "seed did not matter");
            }
        }
    }

    /// Uniform keys spread evenly over hash groups: each group's share of
    /// a 10k-command stream stays within ±35% of fair.
    #[test]
    fn uniform_spread_is_balanced(seed in 0u64..1_000_000, groups in 2usize..9) {
        let total = 10_000;
        let pw = partition(&WorkloadSpec::Uniform { keys: 4096 }, seed, total, groups);
        let fair = total as f64 / groups as f64;
        for (g, backlog) in pw.backlogs.iter().enumerate() {
            let share = backlog.len() as f64;
            prop_assert!(
                (share - fair).abs() < 0.35 * fair,
                "group {g} got {share} of a fair {fair}"
            );
        }
    }

    /// Zipf head mass: rank 0 draws ≈ 1/(H_{keys,s}) of the stream — far
    /// above the uniform share — and mass grows with the skew exponent.
    #[test]
    fn zipf_concentrates_head_mass(seed in 0u64..1_000_000) {
        let total = 20_000;
        let keys = 1024u64;
        let mild = sample_keys(&WorkloadSpec::Zipf { keys, s: 0.99 }, seed, total);
        let sharp = sample_keys(&WorkloadSpec::Zipf { keys, s: 1.30 }, seed, total);
        let uniform_share = 1.0 / keys as f64;
        let mild_head = frequency(&mild, 0);
        let sharp_head = frequency(&sharp, 0);
        // s=0.99, 1024 keys: H ≈ 7.5, so rank 0 carries ≈ 13% of draws.
        prop_assert!(
            mild_head > 0.08 && mild_head < 0.20,
            "zipf(0.99) head mass {mild_head} outside [0.08, 0.20]"
        );
        prop_assert!(
            mild_head > 20.0 * uniform_share,
            "zipf head {mild_head} not clearly above uniform {uniform_share}"
        );
        prop_assert!(
            sharp_head > mild_head,
            "skew did not increase head mass: s=1.3 {sharp_head} <= s=0.99 {mild_head}"
        );
        // Top-8 ranks of the mild stream hold a solid plurality.
        let top8: f64 = (0..8).map(|k| frequency(&mild, k)).sum();
        prop_assert!(top8 > 0.30, "zipf(0.99) top-8 mass only {top8}");
    }

    /// Hot-shard hit ratio: the pinned key's frequency tracks
    /// `hot_permille` within ±50‰ (plus the tiny uniform leakage onto the
    /// hot key itself), and the hot group's backlog dominates accordingly.
    #[test]
    fn hot_shard_hits_at_the_configured_rate(
        seed in 0u64..1_000_000,
        hot_permille in 100u32..950,
    ) {
        let total = 20_000;
        let spec = WorkloadSpec::HotShard {
            keys: 4096,
            hot_key: 42,
            hot_permille,
        };
        let keys = sample_keys(&spec, seed, total);
        let hit = frequency(&keys, 42);
        let want = hot_permille as f64 / 1000.0;
        prop_assert!(
            (hit - want).abs() < 0.05,
            "hot-key hit ratio {hit} vs configured {want}"
        );
        // And the backlogs see it: the hot key's group holds at least its
        // hot share of commands.
        let groups = 8;
        let pw = partition(&spec, seed, total, groups);
        let hot_group = group_of_key(42, groups);
        let share = pw.backlogs[hot_group].len() as f64 / total as f64;
        prop_assert!(
            share > want - 0.05,
            "hot group share {share} below configured {want}"
        );
    }
}
